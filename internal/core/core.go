// Package core is the executable form of the Perennial logic (§5): the
// ghost state and proof rules of Table 1, enforced dynamically instead
// of deductively. A verified implementation threads a *Ctx through its
// code and performs its durable-state effects through capability-checked
// operations; any violation of the rules — using a stale-version
// capability, duplicating a lease, writing without both the master copy
// and the lease, returning from an operation that never simulated its
// spec step, or recovery completing an operation without a helping token
// — fails the execution, playing the role of a proof that does not go
// through.
//
// The pieces, mirroring Table 1:
//
//   - versioned capabilities (§5.2): every capability records the memory
//     version it belongs to; a crash advances the version and
//     invalidates stale capabilities on use.
//   - recovery leases (§5.3): a durable resource's capability is split
//     into a master copy (kept in the crash invariant, survives crashes)
//     and a lease (held by running threads, dies at a crash). Updating
//     the resource requires presenting both at the current version;
//     after a crash, recovery synthesizes a fresh lease from the master.
//   - crash invariant (§5.1): the distinguished invariant recovery
//     starts with. Masters not deposited in the crash invariant are lost
//     at a crash.
//   - refinement ghost state (§4, §5.5): source(σ) plus per-operation
//     j ⤇ op tokens; StepSim simulates one atomic spec transition at the
//     implementation's linearization point; CrashSim turns ⤇Crashing
//     into ⤇Done via the spec crash step.
//   - recovery helping (§5.4): a pending operation's j ⤇ op token can be
//     deposited in the crash invariant; after a crash, recovery may
//     retrieve it and simulate the operation on the dead thread's
//     behalf.
package core

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/machine"
	"repro/internal/spec"
)

// Ctx is the ghost state attached to one machine. It registers itself
// as a device so that machine crashes advance capability bookkeeping in
// lockstep with the memory version.
type Ctx struct {
	m *machine.Machine

	resources    map[string]*resource
	setResources map[string]*setResource

	// crashInv holds resource names whose masters are currently
	// deposited in the crash invariant.
	crashInv map[string]bool

	// helping holds j ⤇ op tokens deposited in the crash invariant,
	// keyed by token.
	helping map[*JTok]bool

	// simulation ghost state
	sp      spec.Interface
	src     spec.State
	simInit bool

	// crashing is non-nil between a crash and the recovery proof's
	// CrashSim call (the ⤇Crashing token of §5.5).
	crashing bool

	violations []string
}

// resource is one durable location's capability bookkeeping.
type resource struct {
	name string
	// val is the logical value the capabilities assert (the v in
	// d[a] ↦ₙ v). It is ghost state: the real device holds the data.
	val any
	// masterVer is the version of the outstanding master, masterLive
	// whether it survived the last crash (it does iff deposited in the
	// crash invariant).
	masterVer  uint64
	masterLive bool
	// leaseVer is the version of the outstanding lease; leaseOut whether
	// one is outstanding at that version.
	leaseVer uint64
	leaseOut bool
}

// NewCtx creates the ghost context for m and registers it for crash
// notifications.
func NewCtx(m *machine.Machine) *Ctx {
	c := &Ctx{
		m:            m,
		resources:    map[string]*resource{},
		setResources: map[string]*setResource{},
		crashInv:     map[string]bool{},
		helping:      map[*JTok]bool{},
	}
	m.RegisterDevice(c)
	return c
}

// Crash implements machine.Device: leases die with the version bump
// (they are version-checked on use), masters survive only if they were
// deposited in the crash invariant, and the spec-level crash step
// becomes owed (⤇Crashing).
func (c *Ctx) Crash() {
	for name, r := range c.resources {
		if !c.crashInv[name] {
			r.masterLive = false
		}
		r.leaseOut = false
	}
	for name, r := range c.setResources {
		if !c.crashInv["set:"+name] {
			r.masterLive = false
		}
		r.leaseOut = false
	}
	if c.simInit {
		c.crashing = true
	}
}

// failf records a logic violation and aborts the thread (when called
// with a thread) so the explorer reports it as a counterexample.
func (c *Ctx) failf(t *machine.T, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.violations = append(c.violations, msg)
	if t != nil {
		t.Failf("perennial logic violation: %s", msg)
	} else {
		c.m.Failf("perennial logic violation: %s", msg)
	}
}

// Violations returns all recorded logic violations.
func (c *Ctx) Violations() []string {
	out := append([]string{}, c.violations...)
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Durable capabilities: master copies and recovery leases (§5.3)
// ---------------------------------------------------------------------

// Master is the master copy d[a] ↦ₙ v of a durable resource's
// capability. It records the resource's logical value so that recovery
// can rely on it after a crash.
type Master struct {
	c   *Ctx
	res *resource
	ver uint64
}

// Lease is the temporary capability leaseₙ(d[a], v): permission to
// modify the resource during the current version only.
type Lease struct {
	c   *Ctx
	res *resource
	ver uint64
}

// NewDurable allocates the capability pair for a durable resource
// currently holding val. The master is NOT yet in the crash invariant;
// deposit it with DepositMaster or it will be lost at a crash.
func (c *Ctx) NewDurable(t *machine.T, name string, val any) (*Master, *Lease) {
	if _, dup := c.resources[name]; dup {
		c.failf(t, "durable resource %q allocated twice", name)
		return nil, nil
	}
	r := &resource{
		name: name, val: val,
		masterVer: c.m.Version(), masterLive: true,
		leaseVer: c.m.Version(), leaseOut: true,
	}
	c.resources[r.name] = r
	return &Master{c: c, res: r, ver: r.masterVer}, &Lease{c: c, res: r, ver: r.leaseVer}
}

// Name returns the resource name this master covers.
func (m *Master) Name() string { return m.res.name }

// Value returns the logical value the master asserts. Valid use requires
// the master to be live at the current version (checked).
func (m *Master) Value(t *machine.T) any {
	m.check(t, "read")
	return m.res.val
}

func (m *Master) check(t *machine.T, use string) {
	if !m.res.masterLive {
		m.c.failf(t, "master %s used for %s but it was lost at a crash (not in the crash invariant)", m.res.name, use)
	}
	if m.ver != m.res.masterVer {
		m.c.failf(t, "stale master %s (version %d, current master version %d) used for %s", m.res.name, m.ver, m.res.masterVer, use)
	}
}

// Name returns the resource name this lease covers.
func (l *Lease) Name() string { return l.res.name }

// Value returns the value the lease asserts; using a lease from before
// the last crash is a violation (leases are version-restricted, §5.3).
func (l *Lease) Value(t *machine.T) any {
	l.check(t, "read")
	return l.res.val
}

func (l *Lease) check(t *machine.T, use string) {
	if l.ver != l.c.m.Version() {
		l.c.failf(t, "stale lease %s (version %d, memory version %d) used for %s", l.res.name, l.ver, l.c.m.Version(), use)
	}
	if !l.res.leaseOut || l.res.leaseVer != l.ver {
		l.c.failf(t, "lease %s used for %s but it is not the outstanding lease", l.res.name, use)
	}
}

// Update is Table 1's write rule:
//
//	{d[a] ↦ₙ v₀ ∗ leaseₙ(d[a], v₀)} write {d[a] ↦ₙ v ∗ leaseₙ(d[a], v)}ₙ
//
// Both capabilities must be presented at the current version and must
// agree on the old value; apply performs the real device write while the
// rule holds.
func (c *Ctx) Update(t *machine.T, m *Master, l *Lease, newVal any, apply func()) {
	if m.res != l.res {
		c.failf(t, "update presented master %s with lease %s", m.res.name, l.res.name)
		return
	}
	m.check(t, "update")
	l.check(t, "update")
	if m.ver != c.m.Version() {
		c.failf(t, "master %s is at version %d but memory is at %d: synthesize a fresh pair first", m.res.name, m.ver, c.m.Version())
	}
	if apply != nil {
		apply()
	}
	m.res.val = newVal
}

// Resynthesize implements the crash rule of Table 1:
//
//	d[a] ↦ₙ v  ⟹  d[a] ↦ₙ₊₁ v ∗ leaseₙ₊₁(d[a], v)
//
// Recovery uses it to mint the new master/lease pair at the post-crash
// version. Only a live master (one that was in the crash invariant) can
// be resynthesized, and only after a crash made the current pair stale.
// Any handle of a live master may be used: a crash during recovery means
// the rerun resynthesizes from handles minted before the first crash.
func (m *Master) Resynthesize(t *machine.T) (*Master, *Lease) {
	c := m.c
	if !m.res.masterLive {
		c.failf(t, "cannot resynthesize %s: master was lost at a crash", m.res.name)
		return nil, nil
	}
	now := c.m.Version()
	if m.res.masterVer == now {
		c.failf(t, "resynthesize %s without an intervening crash (version %d)", m.res.name, now)
		return nil, nil
	}
	if m.res.leaseOut && m.res.leaseVer == now {
		c.failf(t, "resynthesize %s would duplicate an outstanding lease", m.res.name)
		return nil, nil
	}
	m.res.masterVer = now
	m.res.leaseVer = now
	m.res.leaseOut = true
	return &Master{c: c, res: m.res, ver: now}, &Lease{c: c, res: m.res, ver: now}
}

// ---------------------------------------------------------------------
// Crash invariant (§5.1)
// ---------------------------------------------------------------------

// DepositMaster stores a master in the crash invariant so it survives
// crashes. The master stays usable for updates; the deposit is about
// crash transfer, like storing d[a] ↦ v in C (Figure 9).
func (c *Ctx) DepositMaster(t *machine.T, m *Master) {
	m.check(t, "deposit")
	c.crashInv[m.res.name] = true
}

// WithdrawMaster removes a master from the crash invariant (e.g. when a
// temporary file's entry should no longer be preserved).
func (c *Ctx) WithdrawMaster(t *machine.T, m *Master) {
	if !c.crashInv[m.res.name] {
		c.failf(t, "withdraw of %s which is not in the crash invariant", m.res.name)
	}
	delete(c.crashInv, m.res.name)
}

// InCrashInv reports whether the named resource's master is deposited.
func (c *Ctx) InCrashInv(name string) bool { return c.crashInv[name] }

// ---------------------------------------------------------------------
// Refinement ghost state: source(σ), j ⤇ op, helping (§4, §5.4, §5.5)
// ---------------------------------------------------------------------

// JTok is the j ⤇ op token: the right (and obligation) to simulate
// thread j's pending operation exactly once.
type JTok struct {
	c    *Ctx
	op   spec.Op
	done bool
	ret  spec.Ret
}

// Op returns the pending operation.
func (j *JTok) Op() spec.Op { return j.op }

// Done reports whether the operation has been simulated.
func (j *JTok) Done() bool { return j.done }

// Ret returns the simulated return value; only meaningful once Done.
func (j *JTok) Ret() spec.Ret { return j.ret }

// InitSim installs the specification and initial source state,
// source(σ₀).
func (c *Ctx) InitSim(sp spec.Interface, st spec.State) {
	c.sp = sp
	c.src = st
	c.simInit = true
}

// Source returns the current source state σ (for abstraction-relation
// checks).
func (c *Ctx) Source() spec.State { return c.src }

// NewJTok mints the j ⤇ op token when an operation is invoked.
func (c *Ctx) NewJTok(op spec.Op) *JTok {
	return &JTok{c: c, op: op}
}

// StepSim simulates j's operation at its linearization point: it checks
// step(op, σ, σ′, ret) is allowed by the spec and advances source(σ) to
// source(σ′). Each token may be simulated at most once; simulating an
// op the spec does not allow here, or with a disallowed return value,
// is a violation. ret may be spec.Pending when the return value is
// determined later by the caller (helping a crashed thread).
func (c *Ctx) StepSim(t *machine.T, j *JTok, ret spec.Ret) {
	c.StepSimWhere(t, j, ret, nil)
}

// StepSimWhere is StepSim for nondeterministic specification steps: the
// match predicate selects, among the allowed post-states, the one the
// implementation actually realized — the mechanical analog of
// instantiating an existential in the proof (e.g. which fresh message
// ID Deliver chose). A nil match picks the sole outcome and fails if
// the step is ambiguous.
func (c *Ctx) StepSimWhere(t *machine.T, j *JTok, ret spec.Ret, match func(spec.State) bool) {
	if !c.simInit {
		c.failf(t, "StepSim before InitSim")
		return
	}
	if c.crashing {
		c.failf(t, "StepSim(%v) while a spec crash step is owed (⤇Crashing): recovery must CrashSim first or help before observing post-crash state", j.op)
		return
	}
	if j.done {
		c.failf(t, "operation %v simulated twice", j.op)
		return
	}
	nexts, ub := c.sp.Step(c.src, j.op, ret)
	if ub {
		// The spec leaves this call undefined; the proof is vacuous from
		// here on. We mark the token done so the harness does not also
		// flag it.
		j.done = true
		j.ret = ret
		return
	}
	if len(nexts) == 0 {
		c.failf(t, "StepSim: spec does not allow %v returning %v in state %s", j.op, ret, c.sp.Key(c.src))
		return
	}
	chosen := -1
	if match == nil {
		if len(nexts) > 1 {
			c.failf(t, "StepSim: %v has %d allowed outcomes; use StepSimWhere to pick the realized one", j.op, len(nexts))
			return
		}
		chosen = 0
	} else {
		for i, ns := range nexts {
			if match(ns) {
				chosen = i
				break
			}
		}
		if chosen == -1 {
			c.failf(t, "StepSimWhere: no allowed outcome of %v matches the implementation's choice", j.op)
			return
		}
	}
	c.src = nexts[chosen]
	j.done = true
	j.ret = ret
}

// FinishOp is called by the harness when an operation returns: the
// token must have been simulated (the operation's proof stepped the
// source) with the same return value the caller observed.
func (c *Ctx) FinishOp(t *machine.T, j *JTok, ret spec.Ret) {
	if !j.done {
		c.failf(t, "operation %v returned %v without simulating its spec step (missing linearization point)", j.op, ret)
		return
	}
	if !reflect.DeepEqual(j.ret, ret) {
		c.failf(t, "operation %v simulated return %v but actually returned %v", j.op, j.ret, ret)
	}
}

// DepositHelping stores j ⤇ op in the crash invariant (§5.4): if the
// system crashes while the token is deposited, recovery may withdraw it
// and complete the operation on the dead thread's behalf.
func (c *Ctx) DepositHelping(t *machine.T, j *JTok) {
	if j.done {
		c.failf(t, "helping deposit of already-simulated op %v", j.op)
		return
	}
	c.helping[j] = true
}

// WithdrawHelping removes a deposited token, e.g. when the operation
// completes normally and simulates its own step.
func (c *Ctx) WithdrawHelping(t *machine.T, j *JTok) {
	if !c.helping[j] {
		c.failf(t, "withdraw of helping token %v which is not deposited", j.op)
		return
	}
	delete(c.helping, j)
}

// HelpingTokens returns the deposited tokens (recovery iterates these
// to decide which crashed operations it is completing).
func (c *Ctx) HelpingTokens() []*JTok {
	var out []*JTok
	for j := range c.helping {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		return fmt.Sprintf("%v", out[a].op) < fmt.Sprintf("%v", out[b].op)
	})
	return out
}

// Help lets recovery simulate a deposited token's operation with
// Pending return (nobody observes it), consuming the token. This is the
// recovery-helping rule: recovery completes the crashed thread's
// operation (§5.4).
func (c *Ctx) Help(t *machine.T, j *JTok) {
	if !c.helping[j] {
		c.failf(t, "recovery helping op %v without a deposited token", j.op)
		return
	}
	delete(c.helping, j)
	// Helping happens logically just before the crash the token survived,
	// so it is simulated before the owed crash step.
	wasCrashing := c.crashing
	c.crashing = false
	c.StepSim(t, j, spec.Pending)
	c.crashing = wasCrashing
}

// CrashSim performs the spec-level crash transition, discharging the
// owed ⤇Crashing into ⤇Done (Table 1's crash-refinement rule). Recovery
// must call it exactly once per machine crash, after any helping.
func (c *Ctx) CrashSim(t *machine.T) {
	if !c.simInit {
		c.failf(t, "CrashSim before InitSim")
		return
	}
	if !c.crashing {
		c.failf(t, "CrashSim without an owed spec crash step (no ⤇Crashing token)")
		return
	}
	// Tokens still deposited belong to threads that died without being
	// helped: their operations never take effect. Drop them.
	c.helping = map[*JTok]bool{}
	c.src = c.sp.Crash(c.src)
	c.crashing = false
}

// CrashPending reports whether a spec crash step is still owed.
func (c *Ctx) CrashPending() bool { return c.crashing }
