package core

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

func TestSetLeaseInsertWithoutLease(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, _ := c.NewDurableSet(mt, "u0", nil)
		// Insert requires no lease: concurrent delivery (§8.3).
		ms.Insert(mt, "msg1", nil)
		ms.Insert(mt, "msg2", nil)
		if got := ms.Elems(mt); !reflect.DeepEqual(got, []string{"msg1", "msg2"}) {
			mt.Failf("elems=%v", got)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestSetLeaseDoubleInsertFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, _ := c.NewDurableSet(mt, "u0", nil)
		ms.Insert(mt, "x", nil)
		ms.Insert(mt, "x", nil)
	})
	wantViolation(t, res, "already present")
}

func TestSetLeaseRemoveRequiresLowerBound(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, ls := c.NewDurableSet(mt, "u0", nil)
		ms.Insert(mt, "msg1", nil) // inserted after the lease was minted
		// The lease's lower bound does not include msg1 yet.
		ms.Remove(mt, ls, "msg1", nil)
	})
	wantViolation(t, res, "not in the lease's lower bound")
}

func TestSetLeaseRefreshThenRemove(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, ls := c.NewDurableSet(mt, "u0", nil)
		ms.Insert(mt, "msg1", nil)
		ls.Refresh(mt, ms) // the List under the mailbox lock
		if !ls.Contains(mt, "msg1") {
			mt.Failf("lower bound missing msg1 after refresh")
		}
		ms.Remove(mt, ls, "msg1", nil)
		if len(ms.Elems(mt)) != 0 {
			mt.Failf("remove did not apply")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestSetLeaseInitialElementsAreInLowerBound(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, ls := c.NewDurableSet(mt, "u0", []string{"a", "b"})
		ms.Remove(mt, ls, "a", nil)
		if got := ls.Lower(mt); !reflect.DeepEqual(got, []string{"b"}) {
			mt.Failf("lower=%v", got)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestSetLeaseStaleAfterCrash(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ls *SetLease
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		var ms *SetMaster
		ms, ls = c.NewDurableSet(mt, "u0", []string{"a"})
		c.DepositSetMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		_ = ls.Lower(mt)
	})
	wantViolation(t, res, "stale lower-bound lease")
}

func TestSetMasterLostWithoutDeposit(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *SetMaster
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurableSet(mt, "u0", []string{"a"})
		// not deposited
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		_ = ms.Elems(mt)
	})
	wantViolation(t, res, "lost at a crash")
}

func TestSetMasterResynthesizeAfterCrash(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *SetMaster
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurableSet(mt, "u0", []string{"a", "b"})
		c.DepositSetMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms2, ls2 := ms.Resynthesize(mt)
		if got := ms2.Elems(mt); !reflect.DeepEqual(got, []string{"a", "b"}) {
			mt.Failf("elems after resynthesize: %v", got)
		}
		// Recovery's fresh lease starts with the full lower bound.
		ms2.Remove(mt, ls2, "a", nil)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestSetMasterResynthesizeWithoutCrashFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, _ := c.NewDurableSet(mt, "u0", nil)
		ms.Resynthesize(mt)
	})
	wantViolation(t, res, "without an intervening crash")
}

func TestSetLeaseMismatchedPairFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ma, _ := c.NewDurableSet(mt, "a", []string{"x"})
		_, lb := c.NewDurableSet(mt, "b", []string{"x"})
		ma.Remove(mt, lb, "x", nil)
	})
	wantViolation(t, res, "lease b against master a")
}
