package goose

import (
	"os"
	"strings"
	"testing"
)

// TestLoadDirOnGooseDemo runs the full pipeline on the in-repo demo
// package (what `go run ./cmd/goose examples/goosedemo` does).
func TestLoadDirOnGooseDemo(t *testing.T) {
	pkg, err := LoadDir("../../examples/goosedemo")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg); len(diags) != 0 {
		t.Fatalf("goosedemo must be in the subset: %v", diags)
	}
	out, err := Translate(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Module Goosedemo.",
		"Record Bank := mkBank {",
		"balances : slice uint64;",
		"Definition Bank__Deposit",
		"Definition Bank__Transfer",
		"Definition Bank__Sum",
		"Definition DepositAll",
		"(NewSlice slice uint64 n)",
		"Fork (",
		"(lock.lock b.(mu))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("translation missing %q", want)
		}
	}
}

// TestLoadDirMissing reports a sensible error.
func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("does-not-exist"); err == nil {
		t.Fatal("missing directory accepted")
	}
}

// TestMailboatIsOutsideTheSubset documents that the real Mailboat
// library is not Goose-translatable here because it is written against
// the gfs.System interface (the model/OS portability seam), which the
// subset forbids — the original Goose instead links a fixed support
// library. The checker must say so rather than crash.
func TestMailboatIsOutsideTheSubset(t *testing.T) {
	pkg, err := LoadDir("../../internal/mailboat")
	if err != nil {
		// Type-checking may fail outright because of module-internal
		// imports; that is also an acceptable rejection.
		return
	}
	if diags := Check(pkg); len(diags) == 0 {
		t.Fatal("mailboat unexpectedly within the subset")
	}
}

// TestGoldenGoosedemo pins the translator's output for the demo
// package, so accidental changes to the emitted model are visible in
// review (the translator is trusted; its output is audited, §7).
func TestGoldenGoosedemo(t *testing.T) {
	pkg, err := LoadDir("../../examples/goosedemo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Translate(pkg)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/goosedemo.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("translation differs from testdata/goosedemo.golden;\nregenerate with: go run ./cmd/goose examples/goosedemo > internal/goose/testdata/goosedemo.golden\n--- got ---\n%s", out)
	}
}
