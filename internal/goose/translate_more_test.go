package goose

import (
	"strings"
	"testing"
)

// A kitchen-sink source exercising the translator's remaining statement
// and expression forms.
const sinkSrc = `package demo

const Limit = 8

type Cell struct {
	v uint64
}

func Pick(flag bool, a uint64, b uint64) uint64 {
	var out uint64
	if flag {
		out = a
	} else if a > b {
		out = b
	} else {
		out = a + b
	}
	return out
}

func Classify(x uint64) uint64 {
	switch x {
	case 0:
		return 100
	case 1, 2:
		return 200
	default:
		return 300
	}
}

func SumRange(xs []uint64) uint64 {
	var total uint64
	for _, v := range xs {
		total += v
	}
	return total
}

func CountDown(n uint64) uint64 {
	for n > 0 {
		n--
		if n == 3 {
			break
		}
		if n == 5 {
			continue
		}
	}
	return n
}

func Negate(b bool) bool {
	return !b
}

func Deref(p *uint64) uint64 {
	x := *p
	*p = x + 1
	return x
}

func Slice3(xs []uint64) []uint64 {
	return xs[1:3]
}

func MakeCell(v uint64) Cell {
	return Cell{v: v}
}

func SetIndex(xs []uint64, i uint64, v uint64) {
	xs[i] = v
}

func AddrOf() *uint64 {
	var x uint64
	p := &x
	return p
}

func UseMap(m map[string]uint64, k string) uint64 {
	v := m[k]
	delete(m, k)
	return v
}
`

func TestTranslateKitchenSink(t *testing.T) {
	out, err := Translate(load(t, sinkSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Definition Pick",
		"if: flag",
		"(* switch *)",
		"(* case #0 *)",
		"(* case #1 | #2 *)",
		"(* case default *)",
		"ForEach xs (fun _ v => ",
		"Break",
		"Continue",
		"(negb b)",
		"(load p)",
		"store p",
		"(SliceSubslice xs #1 #3)",
		"mkCell",
		"SliceSet xs i v",
		"(ref x)",
		"(MapDelete m k)",
		"Definition Limit : expr := #8.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("translation missing %q", want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	diags := mustCheck(t, `package demo
var global uint64
`)
	if len(diags) == 0 {
		t.Fatal("expected a diagnostic")
	}
	s := diags[0].String()
	if !strings.Contains(s, "demo.go") || !strings.Contains(s, "global state") {
		t.Fatalf("diag string: %q", s)
	}
}

func TestCheckRejectsSizedSignedInts(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F(x int64) int64 { return x }
`), "sized signed integers")
}

func TestCheckRejectsGenerics(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func Id[T any](x T) T { return x }
`), "generic functions")
}

func TestCheckRejectsMapWithStructKey(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
type K struct{ a uint64 }
func F(m map[K]uint64) uint64 { return m[K{}] }
`), "map keys")
}

func TestTranslateNamedTypeAlias(t *testing.T) {
	out, err := Translate(load(t, `package demo
type Block = uint64
type Blocks []uint64
func First(b Blocks) uint64 { return b[0] }
`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Definition Blocks := slice uint64.") {
		t.Errorf("named slice type not translated:\n%s", out)
	}
}

func TestTranslateCharAndStringLiterals(t *testing.T) {
	out, err := Translate(load(t, `package demo
func Greet() string { return "hello" }
func IsDot(c byte) bool { return c == '.' }
`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `#(str "hello")`) {
		t.Errorf("string literal missing:\n%s", out)
	}
	if !strings.Contains(out, `#(byte '.')`) {
		t.Errorf("char literal missing:\n%s", out)
	}
}
