package goose

import (
	"strings"
	"testing"
)

func load(t *testing.T, src string) *Package {
	t.Helper()
	p, err := LoadSource("demo", map[string]string{"demo.go": src})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func mustCheck(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return Check(load(t, src))
}

func wantDiag(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic mentions %q in %v", substr, diags)
}

const goodSrc = `package demo

import "sync"

const BlockSize = 4096

type Pair struct {
	A uint64
	B uint64
}

type Obj struct {
	mu   *sync.Mutex
	vals []uint64
}

func Sum(xs []uint64) uint64 {
	var total uint64
	for i := uint64(0); i < uint64(len(xs)); i++ {
		total += xs[i]
	}
	return total
}

func (o *Obj) Get(i uint64) uint64 {
	o.mu.Lock()
	v := o.vals[i]
	o.mu.Unlock()
	return v
}

func Clamp(x uint64) uint64 {
	if x > BlockSize {
		return BlockSize
	}
	return x
}

func Spawn(o *Obj) {
	go func() {
		o.Get(0)
	}()
}
`

func TestGoodPackagePassesCheck(t *testing.T) {
	diags := mustCheck(t, goodSrc)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestInterfaceRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
type Reader interface{ Read() uint64 }
`), "interfaces are not supported")
}

func TestFirstClassFunctionRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func Apply(f func(uint64) uint64, x uint64) uint64 { return f(x) }
`), "first-class functions")
}

func TestFuncLitOutsideGoRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F() uint64 {
	g := func() uint64 { return 1 }
	return g()
}
`), "first-class functions")
}

func TestChannelRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F(c chan uint64) { c <- 1 }
`), "channels are not supported")
}

func TestDeferRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F() { defer G() }
func G() {}
`), "defer is not supported")
}

func TestSyncAtomicRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
import "sync/atomic"
func F(x *uint64) { atomic.AddUint64(x, 1) }
`), "sync/atomic")
}

func TestGlobalVariableRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
var counter uint64
`), "mutable global state")
}

func TestFloatRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F(x float64) float64 { return x * 2.0 }
`), "floating-point")
}

func TestGotoRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F() {
loop:
	goto loop
}
`), "goto is not supported")
}

func TestSelectRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F() { select {} }
`), "select is not supported")
}

func TestTypeAssertRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
func F(x any) uint64 { return x.(uint64) }
`), "type assertions")
}

func TestDisallowedImportRejected(t *testing.T) {
	wantDiag(t, mustCheck(t, `package demo
import "os"
func F() { os.Exit(1) }
`), "outside the Goose support surface")
}

func TestGoWithNamedFunctionAllowed(t *testing.T) {
	diags := mustCheck(t, `package demo
func worker() {}
func F() { go worker() }
`)
	if len(diags) != 0 {
		t.Fatalf("diags: %v", diags)
	}
}

func TestTranslateGoodPackage(t *testing.T) {
	out, err := Translate(load(t, goodSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Module Demo.",
		"Record Pair := mkPair {",
		"A : uint64;",
		"Definition Sum (xs: slice uint64) : proc uint64 :=",
		"Definition Obj__Get",
		"(lock.lock o.(mu))",   // o.mu.Lock()
		"(lock.unlock o.(mu))", // o.mu.Unlock()
		"Definition BlockSize : expr := #4096.",
		"for: (",
		"Fork (",
		"ret (total)",
		"if: (x > BlockSize)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("translation missing %q\n%s", want, out)
		}
	}
}

func TestTranslateRejectsViolations(t *testing.T) {
	p := load(t, `package demo
type I interface{ M() }
`)
	if _, err := Translate(p); err == nil {
		t.Fatal("Translate accepted an interface")
	}
}

func TestTranslateIsDeterministic(t *testing.T) {
	a, err := Translate(load(t, goodSrc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Translate(load(t, goodSrc))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("translations differ between runs")
	}
}

func TestLoadSourceRejectsTypeErrors(t *testing.T) {
	if _, err := LoadSource("demo", map[string]string{"d.go": `package demo
func F() uint64 { return "not a number" }
`}); err == nil {
		t.Fatal("type error accepted")
	}
}
