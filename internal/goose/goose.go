// Package goose is the reproduction's analog of the Goose translator
// (§6, §7): a front end built on Go's own go/ast, go/parser, and
// go/types packages — the paper relies on these official tools "to
// reduce the chance of a mismatch between the translator and the Go
// compiler" — that
//
//  1. checks that a Go package stays inside the Goose subset (no
//     interfaces, no first-class functions, no channels, no defer, no
//     floating point, no sync/atomic, no mutable globals, ...), and
//  2. translates conforming packages into a Coq-flavoured model, one
//     Definition per function in a monadic proc syntax, ready to reason
//     about in the Perennial-style framework.
//
// Like the original, the translator is a trusted component: its output
// is deliberately human-readable so it can be audited (§7).
package goose

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"sort"
	"strings"
)

// Diagnostic is one subset violation.
type Diagnostic struct {
	Pos token.Position
	Msg string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
}

// Package is a parsed and type-checked Go package ready for checking
// and translation.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// allowedImports is the Goose support surface: the paper's Goose
// library exposes locks and a file-system API; here sync stands in for
// locks and strconv/fmt-free string handling keeps examples honest.
var allowedImports = map[string]bool{
	"sync":    true,
	"strconv": true,
}

// LoadSource parses and type-checks in-memory files (name → contents),
// for tests and for translating single files.
func LoadSource(pkgName string, files map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(fset, n, files[n], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("goose: parse %s: %w", n, err)
		}
		parsed = append(parsed, f)
	}
	return typecheck(pkgName, fset, parsed)
}

// LoadDir parses and type-checks all non-test .go files in a directory.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		name := fi.Name()
		return !strings.HasSuffix(name, "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("goose: parse %s: %w", dir, err)
	}
	for name, pkg := range pkgs {
		var files []*ast.File
		fnames := make([]string, 0, len(pkg.Files))
		for fn := range pkg.Files {
			fnames = append(fnames, fn)
		}
		sort.Strings(fnames)
		for _, fn := range fnames {
			files = append(files, pkg.Files[fn])
		}
		return typecheck(name, fset, files)
	}
	return nil, fmt.Errorf("goose: no packages in %s", dir)
}

func typecheck(pkgName string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("goose: typecheck: %w", err)
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Check reports every Goose-subset violation in the package. An empty
// result means the package can be translated.
func Check(p *Package) []Diagnostic {
	c := &checker{p: p}
	for _, f := range p.Files {
		c.file(f)
	}
	sort.Slice(c.diags, func(i, j int) bool {
		a, b := c.diags[i].Pos, c.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return c.diags
}

type checker struct {
	p     *Package
	diags []Diagnostic
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos: c.p.Fset.Position(pos),
		Msg: fmt.Sprintf(format, args...),
	})
}

func (c *checker) file(f *ast.File) {
	for _, imp := range f.Imports {
		path := imp.Path.Value
		path = path[1 : len(path)-1]
		if path == "sync/atomic" {
			c.errorf(imp.Pos(), "sync/atomic is not supported by Goose (§6.1)")
			continue
		}
		if !allowedImports[path] {
			c.errorf(imp.Pos(), "import %q is outside the Goose support surface", path)
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			c.genDecl(d)
		case *ast.FuncDecl:
			c.funcDecl(d)
		}
	}
}

func (c *checker) genDecl(d *ast.GenDecl) {
	switch d.Tok {
	case token.CONST:
		// constants are fine
	case token.VAR:
		c.errorf(d.Pos(), "package-level variables (mutable global state) are not supported")
	case token.TYPE:
		for _, s := range d.Specs {
			ts := s.(*ast.TypeSpec)
			c.typeExpr(ts.Type)
		}
	}
}

func (c *checker) funcDecl(d *ast.FuncDecl) {
	if d.Type.TypeParams != nil {
		c.errorf(d.Pos(), "generic functions are not supported")
	}
	c.fieldTypes(d.Type.Params)
	c.fieldTypes(d.Type.Results)
	if d.Recv != nil {
		c.fieldTypes(d.Recv)
	}
	if d.Body != nil {
		ast.Inspect(d.Body, c.node)
	}
}

func (c *checker) fieldTypes(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		c.typeExpr(f.Type)
	}
}

// typeExpr rejects type forms the Goose model cannot represent.
func (c *checker) typeExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.InterfaceType:
			c.errorf(t.Pos(), "interfaces are not supported (they require modeling function pointers, §3)")
		case *ast.ChanType:
			c.errorf(t.Pos(), "channels are not supported")
		case *ast.FuncType:
			// A FuncType here is a func-typed field/param: a first-class
			// function value.
			c.errorf(t.Pos(), "first-class functions are not supported (§6.1)")
		case *ast.MapType:
			c.checkMapKey(t)
		case *ast.Ident:
			switch t.Name {
			case "float32", "float64", "complex64", "complex128":
				c.errorf(t.Pos(), "floating-point types are not supported")
			case "int8", "int16", "int32", "int64":
				c.errorf(t.Pos(), "sized signed integers are not supported; use uint64")
			}
		}
		return true
	})
}

func (c *checker) node(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.DeferStmt:
		c.errorf(s.Pos(), "defer is not supported")
	case *ast.SelectStmt:
		c.errorf(s.Pos(), "select is not supported")
	case *ast.SendStmt:
		c.errorf(s.Pos(), "channel sends are not supported")
	case *ast.ChanType:
		c.errorf(s.Pos(), "channels are not supported")
	case *ast.InterfaceType:
		c.errorf(s.Pos(), "interfaces are not supported")
	case *ast.GoStmt:
		// Goroutines are allowed, but only as `go func() { ... }()` — a
		// spawned closure, not a function value being passed around.
		if _, ok := s.Call.Fun.(*ast.FuncLit); !ok {
			if _, isIdent := s.Call.Fun.(*ast.Ident); !isIdent {
				c.errorf(s.Pos(), "go statements must spawn a function literal or named function")
			}
		}
		return true
	case *ast.FuncLit:
		// Function literals only appear under GoStmt (handled above by
		// returning true and letting the body be inspected); anywhere
		// else they are first-class function values.
		if !c.underGo(s) {
			c.errorf(s.Pos(), "function literals outside go statements are first-class functions, which are not supported (§6.1)")
		}
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			c.errorf(s.Pos(), "goto is not supported")
		}
	case *ast.BasicLit:
		if s.Kind == token.FLOAT || s.Kind == token.IMAG {
			c.errorf(s.Pos(), "floating-point literals are not supported")
		}
	case *ast.TypeAssertExpr:
		c.errorf(s.Pos(), "type assertions are not supported (no interfaces)")
	case *ast.MapType:
		c.checkMapKey(s)
	}
	return true
}

func (c *checker) checkMapKey(m *ast.MapType) {
	if tv, ok := c.p.Info.Types[m.Key]; ok {
		if b, isBasic := tv.Type.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsOrdered == 0 {
			c.errorf(m.Pos(), "map keys must be basic ordered types (modeled hashmaps)")
		}
	}
}

// underGo reports whether the function literal is the immediate callee
// of a go statement. The checker records go-spawned literals during the
// walk; since ast.Inspect visits GoStmt before its children, we track
// them in a set.
func (c *checker) underGo(lit *ast.FuncLit) bool {
	found := false
	for _, f := range c.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if g.Call.Fun == lit {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
