package admin_test

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/mailboatd"
	"repro/internal/obs"
)

// TestAdminReplicaHealth boots a real replicated pair over loopback
// TCP and drives the admin surface end to end: a healthy /healthz
// answers 200 with the replication snapshot (role, epoch, last-resync
// time), /metrics serves the repl_* families, and opening the
// partition gate degrades /healthz to a 503 carrying the snapshot.
func TestAdminReplicaHealth(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baddr := lis.Addr().String()
	lis.Close()

	backup, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:   2,
		Seed:    2,
		Replica: &mailboatd.ReplicaOptions{ListenAddr: baddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(backup.Close)

	reg := obs.NewRegistry()
	primary, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:   2,
		Seed:    1,
		Metrics: reg,
		Replica: &mailboatd.ReplicaOptions{
			Primary:      true,
			PeerAddr:     baddr,
			CallTimeout:  time.Second,
			RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(primary.Close)

	if err := primary.Deliver(0, []byte("replicated mail")); err != nil {
		t.Fatalf("replicated Deliver: %v", err)
	}

	srv := httptest.NewServer(admin.Handler(reg, nil, primary.MirrorStatus, primary, nil, primary.ReplHealth, primary.ShedStatus))
	t.Cleanup(srv.Close)

	// Healthy: 200 with the replication snapshot riding along.
	var health struct {
		Status      string `json:"status"`
		Replication *struct {
			Role           string `json:"role"`
			Epoch          uint64 `json:"epoch"`
			LastResyncUnix int64  `json:"last_resync_unix"`
			PeerReachable  bool   `json:"peer_reachable"`
			Degraded       bool   `json:"degraded"`
		} `json:"replication"`
	}
	body := get(t, srv.URL+"/healthz", 200)
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Replication == nil {
		t.Fatalf("healthy /healthz missing replication snapshot: %s", body)
	}
	if health.Replication.Role != "primary" || !health.Replication.PeerReachable || health.Replication.Degraded {
		t.Fatalf("unexpected replication snapshot: %s", body)
	}

	// The repl_* families are live on /metrics.
	metrics := get(t, srv.URL+"/metrics", 200)
	for _, want := range []string{"repl_epoch", "repl_role_primary 1", "repl_replicate_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Partition the replication link: the pair can no longer tolerate
	// losing the primary, so /healthz degrades to 503 with the snapshot.
	primary.ReplTransport().Partition(true)
	body = get(t, srv.URL+"/healthz", 503)
	var degraded struct {
		Role          string `json:"role"`
		PeerReachable bool   `json:"peer_reachable"`
		Degraded      bool   `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(body), &degraded); err != nil {
		t.Fatalf("degraded /healthz JSON: %v\n%s", err, body)
	}
	if !degraded.Degraded || degraded.PeerReachable || degraded.Role != "primary" {
		t.Fatalf("degraded /healthz snapshot: %s", body)
	}

	// Heal: back to 200.
	primary.ReplTransport().Partition(false)
	get(t, srv.URL+"/healthz", 200)
}
