package admin_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admin"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/pop3"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// checkHealthy asserts a healthy /healthz body: JSON with status "ok"
// and the build version embedded.
func checkHealthy(t *testing.T, body string) {
	t.Helper()
	var st struct {
		Status  string `json:"status"`
		Version struct {
			Go       string `json:"go"`
			Revision string `json:"revision"`
		} `json:"version"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/healthz is not JSON: %v (body %q)", err, body)
	}
	if st.Status != "ok" {
		t.Errorf("/healthz status %q, want ok (body %q)", st.Status, body)
	}
	if !strings.HasPrefix(st.Version.Go, "go") || st.Version.Revision == "" {
		t.Errorf("/healthz version incomplete: %+v", st.Version)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), nil, nil, nil, nil, nil, nil))
	defer srv.Close()
	var v admin.Version
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/version", http.StatusOK)), &v); err != nil {
		t.Fatalf("/version is not JSON: %v", err)
	}
	if !strings.HasPrefix(v.Go, "go") {
		t.Errorf("go version: %q", v.Go)
	}
	// Test binaries are built outside a VCS stamp; the fallback must
	// still be a non-empty, explicit marker.
	if v.Revision == "" {
		t.Error("revision empty; want a hash or \"unknown\"")
	}
}

// TestTracesDisabled: without a tracer the endpoints are absent, not
// half-broken.
func TestTracesDisabled(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), nil, nil, nil, nil, nil, nil))
	defer srv.Close()
	get(t, srv.URL+"/traces", http.StatusNotFound)
	get(t, srv.URL+"/traces/slow", http.StatusNotFound)
}

// TestTracedDeliveryEndToEnd is the acceptance drill for the tracing
// tentpole: boot the full stack (durable sync discipline, tracer wired
// through SMTP, the adapter, the verified library and the gfs layers),
// push one delivery and one pickup over the wire, and check that the
// delivery renders as a single trace of at least four correctly nested
// spans — verb, library op, publish stage, sync barrier — whose child
// durations sum within the root. Then scrape the same trace over the
// admin endpoints in both renderings.
func TestTracedDeliveryEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:         4,
		Seed:          1,
		SyncOnDeliver: true,
		SyncDirs:      true,
		Metrics:       reg,
		Tracer:        tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)

	ss := smtp.NewServer(adapter, adapter.Users())
	ss.Tracer = tracer
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(sl)
	t.Cleanup(func() { ss.Close() })

	ps := pop3.NewServer(adapter, adapter.Users())
	ps.Tracer = tracer
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ps.Serve(pl)
	t.Cleanup(func() { ps.Close() })

	srv := httptest.NewServer(admin.Handler(reg, nil, adapter.MirrorStatus, adapter, tracer, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)

	s := dialLine(t, sl.Addr().String())
	s.cmd(t, "", "220")
	s.cmd(t, "MAIL FROM:<x@y>", "250")
	s.cmd(t, "RCPT TO:<user1@z>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "traced mail\r\n.\r\n")
	s.cmd(t, "", "250")
	s.cmd(t, "QUIT", "221")

	p := dialLine(t, pl.Addr().String())
	p.cmd(t, "", "+OK")
	p.cmd(t, "USER user1", "+OK")
	p.cmd(t, "PASS x", "+OK maildrop has 1")
	p.cmd(t, "DELE 1", "+OK")
	p.cmd(t, "QUIT", "+OK")

	// The delivery trace: one root, correctly nested, ≥4 levels deep
	// (smtp.DATA → mailboat.deliver → publish.link → syncdir.barrier →
	// gfs.syncdir under the durable discipline).
	recent := tracer.Recent("deliver", 10)
	if len(recent) != 1 {
		t.Fatalf("want exactly 1 deliver trace, got %d", len(recent))
	}
	del := recent[0]
	if del.Root.Name != "smtp.DATA" {
		t.Errorf("deliver root span: %q", del.Root.Name)
	}
	if d := trace.Depth(del); d < 4 {
		var b strings.Builder
		trace.WriteText(&b, del)
		t.Errorf("deliver trace depth %d, want >= 4:\n%s", d, b.String())
	}
	// Validate enforces the timing invariants: every child inside its
	// parent's window, siblings non-overlapping, and each span's child
	// durations summing to no more than the span itself.
	if err := trace.Validate(del); err != nil {
		var b strings.Builder
		trace.WriteText(&b, del)
		t.Errorf("deliver trace invalid: %v\n%s", err, b.String())
	}
	for _, want := range []string{"mailboat.deliver", "spool.write", "publish.link", "syncdir.barrier"} {
		var b strings.Builder
		trace.WriteText(&b, del)
		if !strings.Contains(b.String(), want) {
			t.Errorf("deliver trace missing span %q:\n%s", want, b.String())
		}
	}

	// The pickup and delete verbs traced too.
	for _, op := range []string{"pickup", "delete"} {
		ts := tracer.Recent(op, 10)
		if len(ts) != 1 {
			t.Fatalf("want 1 %s trace, got %d", op, len(ts))
		}
		if err := trace.Validate(ts[0]); err != nil {
			t.Errorf("%s trace invalid: %v", op, err)
		}
	}

	// Admin surface, text rendering: the timeline shows the nested
	// span names.
	body := get(t, srv.URL+"/traces?op=deliver", http.StatusOK)
	for _, want := range []string{"smtp.DATA", "mailboat.deliver", "publish.link", "syncdir.barrier"} {
		if !strings.Contains(body, want) {
			t.Errorf("/traces?op=deliver missing %q:\n%s", want, body)
		}
	}
	slow := get(t, srv.URL+"/traces/slow?op=deliver", http.StatusOK)
	if !strings.Contains(slow, "smtp.DATA") {
		t.Errorf("/traces/slow?op=deliver missing the delivery:\n%s", slow)
	}

	// JSON rendering parses and carries the same structure.
	var traces []trace.TraceJSON
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/traces?op=deliver&format=json", http.StatusOK)), &traces); err != nil {
		t.Fatalf("/traces JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Op != "deliver" || traces[0].Root.Name != "smtp.DATA" {
		t.Errorf("/traces JSON shape: %+v", traces)
	}
	if len(traces[0].Root.Children) == 0 {
		t.Errorf("/traces JSON lost the span tree: %+v", traces[0].Root)
	}

	// Stage histograms fed from span durations are in the exposition.
	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		`trace_stage_seconds_count{op="deliver",stage="spool.write"} 1`,
		`trace_stage_seconds_count{op="deliver",stage="publish.link"} 1`,
		`trace_stage_seconds_count{op="pickup",stage="mailbox.list"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Bad query parameters answer 400, not a panic or a silent default.
	get(t, srv.URL+"/traces?n=bogus", http.StatusBadRequest)
}
