package admin

import (
	"runtime"
	"runtime/debug"
)

// Version identifies the running build: the Go toolchain that compiled
// it and the VCS revision it was built from. Binaries built outside a
// VCS checkout (notably `go test` binaries) report revision "unknown".
type Version struct {
	Go       string `json:"go"`
	Revision string `json:"revision"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// buildVersion reads the build's VCS stamp once; debug.ReadBuildInfo is
// cheap but the answer never changes within a process.
func buildVersion() Version {
	v := Version{Go: runtime.Version(), Revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Revision = s.Value
			case "vcs.modified":
				v.Modified = s.Value == "true"
			}
		}
	}
	return v
}
