package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/trace"
)

// defaultRecentTraces bounds an un-parameterized GET /traces; the full
// ring is available with an explicit ?n=.
const defaultRecentTraces = 20

// writeTraces renders a batch of traces as either indented text
// timelines (the default, for curl-and-squint debugging) or JSON
// (?format=json, for tooling).
func writeTraces(w http.ResponseWriter, r *http.Request, traces []*trace.Trace) {
	if r.URL.Query().Get("format") == "json" {
		out := make([]trace.TraceJSON, 0, len(traces))
		for _, t := range traces {
			out = append(out, trace.ToJSON(t))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces recorded yet")
		return
	}
	for _, t := range traces {
		trace.WriteText(w, t)
		fmt.Fprintln(w)
	}
}

// tracesRecent serves GET /traces: the most recent completed traces,
// newest first. ?op= filters to one operation kind, ?n= widens or
// narrows the batch.
func tracesRecent(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := defaultRecentTraces
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeTraces(w, r, tr.Recent(r.URL.Query().Get("op"), n))
	}
}

// tracesSlow serves GET /traces/slow: the slowest retained traces,
// slowest first. ?op= narrows to one operation kind; without it every
// op's slow list is concatenated (grouped by op).
func tracesSlow(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeTraces(w, r, tr.Slowest(r.URL.Query().Get("op")))
	}
}
