// Package admin serves the operational side-channel of a mailboat
// deployment: Prometheus-text /metrics from an obs.Registry, a
// liveness /healthz, build identification on /version, request
// timelines on /traces, and the standard net/http/pprof profiling
// surface. It is deliberately a separate listener from the mail
// protocols — scraping and profiling must keep working when the SMTP
// and POP3 listeners are saturated, and the admin port can be bound to
// a management-only interface.
package admin

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/trace"
)

// ScrubRunner is the slice of the store the /scrub endpoint needs
// (mailboatd.Adapter implements it). Scrub runs one integrity pass now;
// LastScrub reports the most recent pass.
type ScrubRunner interface {
	Scrub(heal bool) (gfs.ScrubReport, bool)
	LastScrub() (gfs.ScrubReport, time.Time, bool)
}

// healthStatus is the JSON shape a healthy /healthz serves; including
// the build version lets one probe answer "is it up" and "what is
// deployed" at once. On a replicated node the replication snapshot
// rides along (role, epoch, last-resync time), so a healthy 200 still
// tells the operator which half of the pair they are probing.
type healthStatus struct {
	Status      string                `json:"status"`
	Version     Version               `json:"version"`
	Replication *repl.Health          `json:"replication,omitempty"`
	Shed        *mailboatd.ShedStatus `json:"shed,omitempty"`
}

// scrubStatus is the JSON shape /scrub serves.
type scrubStatus struct {
	Ran        bool             `json:"ran"`
	FinishedAt time.Time        `json:"finished_at,omitempty"`
	Report     *gfs.ScrubReport `json:"report,omitempty"`
}

// Handler builds the admin mux over reg. healthz, when non-nil, is
// consulted by /healthz: nil error answers 200 "ok", an error answers
// 503 with the error text. A nil healthz always answers 200.
//
// mirror, when non-nil, reports the mirrored store's replica health
// (mailboatd.Adapter.MirrorStatus fits the signature). A healthy (or
// absent: nil return) mirror keeps the plain 200 "ok" contract; while
// the mirror is degraded or resilvering, /healthz answers 503 with the
// per-replica status as JSON, so orchestrators pull the instance from
// rotation and operators see which replica died at a glance.
//
// scrub, when non-nil, adds the integrity surface: GET /scrub reports
// the most recent scrub pass, POST /scrub runs one now (add ?heal=1 to
// rewrite rotten copies from a good replica) and answers with its
// report. /healthz additionally degrades to 503 when the last scrub
// left damage behind (report not Clean) — detected-but-unhealed rot is
// an operator page, not a silent metric.
//
// tracer, when non-nil, adds the tracing surface: GET /traces serves
// recent request timelines (?op= filters, ?n= sizes the batch,
// ?format=json for tooling) and GET /traces/slow the slowest retained
// trace per operation kind. Without a tracer both answer 404.
//
// shed, when non-nil, reports the store's delivery admission state
// (mailboatd.Adapter.ShedStatus fits the signature). While the store
// is shedding deliveries — watermark breach, disk-full latch, or a
// forced drill — /healthz answers 503 with the snapshot as JSON, so
// load balancers steer mail to a node with space; the healthy 200
// includes the same snapshot (free bytes, in-flight count) for
// observability. Reads keep being served either way.
//
// replica, when non-nil, reports the node's replication health
// (mailboatd.Adapter.ReplHealth fits the signature). A healthy (or
// absent: nil return) snapshot keeps the 200 contract and is included
// in the healthy JSON — role, current epoch, last-resync time — so
// degraded states are observable before they page; while the pair is
// degraded (backup unreachable, fenced dead, or a catch-up resync in
// flight), /healthz answers 503 with the snapshot as JSON.
func Handler(reg *obs.Registry, healthz func() error, mirror func() *gfs.MirrorStatus, scrub ScrubRunner, tracer *trace.Tracer, replica func() *repl.Health, shed func() *mailboatd.ShedStatus) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	version := buildVersion()
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(version)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		if mirror != nil {
			if st := mirror(); st != nil && (st.Degraded || st.Resilvering) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(st)
				return
			}
		}
		if scrub != nil {
			if rep, _, ran := scrub.LastScrub(); ran && !rep.Clean() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(scrubStatus{Ran: true, Report: &rep})
				return
			}
		}
		var sst *mailboatd.ShedStatus
		if shed != nil {
			sst = shed()
			if sst != nil && sst.Shedding {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(sst)
				return
			}
		}
		var rst *repl.Health
		if replica != nil {
			rst = replica()
			if rst != nil && rst.Degraded {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(rst)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(healthStatus{Status: "ok", Version: version, Replication: rst, Shed: sst})
	})
	if tracer != nil {
		mux.HandleFunc("/traces", tracesRecent(tracer))
		mux.HandleFunc("/traces/slow", tracesSlow(tracer))
	}
	if scrub != nil {
		mux.HandleFunc("/scrub", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			switch r.Method {
			case http.MethodGet:
				rep, at, ran := scrub.LastScrub()
				st := scrubStatus{Ran: ran}
				if ran {
					st.FinishedAt = at
					st.Report = &rep
				}
				json.NewEncoder(w).Encode(st)
			case http.MethodPost:
				heal := r.URL.Query().Get("heal") == "1"
				rep, ok := scrub.Scrub(heal)
				if !ok {
					http.Error(w, "store has no integrity layer to scrub", http.StatusConflict)
					return
				}
				json.NewEncoder(w).Encode(scrubStatus{Ran: true, FinishedAt: time.Now(), Report: &rep})
			default:
				http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
