// Package admin serves the operational side-channel of a mailboat
// deployment: Prometheus-text /metrics from an obs.Registry, a
// liveness /healthz, and the standard net/http/pprof profiling
// surface. It is deliberately a separate listener from the mail
// protocols — scraping and profiling must keep working when the SMTP
// and POP3 listeners are saturated, and the admin port can be bound to
// a management-only interface.
package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/gfs"
	"repro/internal/obs"
)

// Handler builds the admin mux over reg. healthz, when non-nil, is
// consulted by /healthz: nil error answers 200 "ok", an error answers
// 503 with the error text. A nil healthz always answers 200.
//
// mirror, when non-nil, reports the mirrored store's replica health
// (mailboatd.Adapter.MirrorStatus fits the signature). A healthy (or
// absent: nil return) mirror keeps the plain 200 "ok" contract; while
// the mirror is degraded or resilvering, /healthz answers 503 with the
// per-replica status as JSON, so orchestrators pull the instance from
// rotation and operators see which replica died at a glance.
func Handler(reg *obs.Registry, healthz func() error, mirror func() *gfs.MirrorStatus) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		if mirror != nil {
			if st := mirror(); st != nil && (st.Degraded || st.Resilvering) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(st)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
