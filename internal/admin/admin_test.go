package admin_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admin"
	"repro/internal/gfs"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

// TestAdminEndToEnd is the in-tree version of the acceptance drill:
// boot the full server stack with metrics wired through every layer,
// push real SMTP/POP3 traffic, then scrape /metrics and check the
// deliver/pickup counters and latency histograms are live and nonzero.
func TestAdminEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:   4,
		Seed:    1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)

	ss := smtp.NewServer(adapter, adapter.Users())
	ss.Metrics = smtp.NewMetrics(reg)
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(sl)
	t.Cleanup(func() { ss.Close() })

	ps := pop3.NewServer(adapter, adapter.Users())
	ps.Metrics = pop3.NewMetrics(reg)
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ps.Serve(pl)
	t.Cleanup(func() { ps.Close() })

	srv := httptest.NewServer(admin.Handler(reg, func() error { return nil }, adapter.MirrorStatus, adapter, nil, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)

	// Drive one delivery and one pickup over the wire.
	s := dialLine(t, sl.Addr().String())
	s.cmd(t, "", "220")
	s.cmd(t, "MAIL FROM:<x@y>", "250")
	s.cmd(t, "RCPT TO:<user1@z>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "observable mail\r\n.\r\n")
	s.cmd(t, "", "250")
	s.cmd(t, "QUIT", "221")

	p := dialLine(t, pl.Addr().String())
	p.cmd(t, "", "+OK")
	p.cmd(t, "USER user1", "+OK")
	p.cmd(t, "PASS x", "+OK maildrop has 1")
	p.cmd(t, "DELE 1", "+OK")
	p.cmd(t, "QUIT", "+OK")

	checkHealthy(t, get(t, srv.URL+"/healthz", http.StatusOK))

	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		// Library layer: the delivery and pickup were counted and timed.
		"mailboat_deliver_attempts_total 1",
		"mailboat_deliver_committed_total 1",
		"mailboat_pickup_messages_total 1",
		"mailboat_deliver_seconds_count 1",
		"mailboat_pickup_seconds_count 1",
		"mailboat_delete_total 1",
		"mailboat_recover_total 1",
		// File-system layer: spool create happened and was timed.
		`gfs_ops_total{op="create"} `,
		`gfs_op_seconds_count{op="create"} `,
		// Adapter layer: outcomes by op.
		`mailboatd_ops_total{op="deliver",outcome="ok"} 1`,
		`mailboatd_ops_total{op="pickup",outcome="ok"} 1`,
		// Front ends: per-verb command counters and connection gauges.
		`smtp_commands_total{verb="DATA"} 1`,
		"smtp_connections_accepted_total 1",
		`pop3_commands_total{verb="PASS"} 1`,
		"pop3_connections_accepted_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", metrics)
	}
}

// TestAdminMirrorDegradedHealthz drills the mirrored health surface end
// to end: healthy answers plain "ok"; after a replica fail-stops and
// the store notices, /healthz flips to 503 with the per-replica status
// as JSON and /metrics carries the mirror counters; a reboot (which
// resilvers) restores the plain 200 "ok".
func TestAdminMirrorDegradedHealthz(t *testing.T) {
	reg := obs.NewRegistry()
	root0, root1 := t.TempDir(), t.TempDir()
	adapter, err := mailboatd.NewWithOptions(root0, mailboatd.Options{
		Users:      2,
		Seed:       1,
		MirrorRoot: root1,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(admin.Handler(reg, nil, adapter.MirrorStatus, adapter, nil, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)

	checkHealthy(t, get(t, srv.URL+"/healthz", http.StatusOK))

	// Kill the published replica; the next store operation notices,
	// fails the read over, and flips the mirror to degraded.
	if err := adapter.Deliver(0, []byte("pre-kill")); err != nil {
		t.Fatal(err)
	}
	adapter.FailStopReplica(0)
	msgs, _ := adapter.Pickup(0)
	adapter.Unlock(0)
	if len(msgs) != 1 || msgs[0].Contents != "pre-kill" {
		t.Fatalf("pickup after replica kill did not fail over: %+v", msgs)
	}

	body := get(t, srv.URL+"/healthz", http.StatusServiceUnavailable)
	var st gfs.MirrorStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("degraded /healthz is not JSON: %v (body %q)", err, body)
	}
	if !st.Degraded || st.Replicas[0].Live || !st.Replicas[1].Live {
		t.Fatalf("degraded /healthz status: %+v", st)
	}

	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		"gfs_mirror_degraded 1",
		"gfs_mirror_failovers_total 1",
		`gfs_mirror_replica_failed_total{replica="0"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Reboot over the same roots: recovery resilvers the stale replica
	// and health goes back to the plain-text contract.
	adapter.Close()
	reg2 := obs.NewRegistry()
	adapter2, err := mailboatd.NewWithOptions(root0, mailboatd.Options{
		Users:      2,
		Seed:       2,
		MirrorRoot: root1,
		Metrics:    reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter2.Close)
	srv2 := httptest.NewServer(admin.Handler(reg2, nil, adapter2.MirrorStatus, adapter2, nil, nil, adapter2.ShedStatus))
	t.Cleanup(srv2.Close)
	checkHealthy(t, get(t, srv2.URL+"/healthz", http.StatusOK))
	metrics2 := get(t, srv2.URL+"/metrics", http.StatusOK)
	if !strings.Contains(metrics2, "gfs_mirror_resilver_runs_total 1") {
		t.Errorf("/metrics missing resilver run after reboot:\n%s", metrics2)
	}
}

// TestAdminScrubEndpoint drills the integrity surface end to end on a
// checksummed mirror: boot records a baseline pass, so GET /scrub
// reports ran=true and clean from the first request; an on-demand POST
// pass over the fresh store is clean; after a byte of one replica is
// flipped, a detect-only pass reports the damage and flips /healthz to
// 503; a healing pass repairs it and health recovers; the integrity
// counters show up on /metrics.
func TestAdminScrubEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:      2,
		Seed:       1,
		MirrorRoot: t.TempDir(),
		Checksum:   true,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)
	srv := httptest.NewServer(admin.Handler(reg, nil, adapter.MirrorStatus, adapter, nil, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)

	if err := adapter.Deliver(0, []byte("scrub me")); err != nil {
		t.Fatal(err)
	}

	var st struct {
		Ran    bool             `json:"ran"`
		Report *gfs.ScrubReport `json:"report"`
	}
	decode := func(body string) {
		t.Helper()
		st.Ran, st.Report = false, nil
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("/scrub is not JSON: %v (body %q)", err, body)
		}
	}

	decode(get(t, srv.URL+"/scrub", http.StatusOK))
	if !st.Ran || st.Report == nil || !st.Report.Clean() {
		t.Fatalf("boot baseline scrub not reported: %+v report %+v", st, st.Report)
	}

	decode(post(t, srv.URL+"/scrub?heal=1", http.StatusOK))
	if !st.Ran || st.Report == nil || st.Report.Checked == 0 || !st.Report.Clean() {
		t.Fatalf("clean-store scrub: %+v report %+v", st, st.Report)
	}

	path := adapter.CorruptReplica(0)
	if path == "" {
		t.Fatal("CorruptReplica found nothing to corrupt")
	}
	t.Logf("corrupted %s on replica 0", path)

	// Detect-only pass: damage reported, nothing healed, health degraded.
	decode(post(t, srv.URL+"/scrub", http.StatusOK))
	if st.Report == nil || st.Report.Corrupt == 0 || len(st.Report.Bad) == 0 {
		t.Fatalf("detect-only scrub missed the rot: %+v", st.Report)
	}
	get(t, srv.URL+"/healthz", http.StatusServiceUnavailable)
	if adapter.IntegrityDetected() == 0 {
		t.Error("detection counter still zero after scrub found rot")
	}

	// Healing pass: repaired from the good replica, health restored.
	decode(post(t, srv.URL+"/scrub?heal=1", http.StatusOK))
	if st.Report == nil || !st.Report.Clean() {
		t.Fatalf("healing scrub left damage: %+v", st.Report)
	}
	checkHealthy(t, get(t, srv.URL+"/healthz", http.StatusOK))
	msgs, _ := adapter.Pickup(0)
	adapter.Unlock(0)
	if len(msgs) != 1 || msgs[0].Contents != "scrub me" {
		t.Fatalf("pickup after heal: %+v", msgs)
	}

	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		"gfs_integrity_detected_total",
		"gfs_integrity_healed_total",
		"gfs_integrity_scrub_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestScrubWithoutIntegrityLayer checks the no-op contract: a plain
// (non-checksummed) store has nothing to scrub, so POST answers 409 and
// /healthz keeps the plain 200.
func TestScrubWithoutIntegrityLayer(t *testing.T) {
	reg := obs.NewRegistry()
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{Users: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)
	srv := httptest.NewServer(admin.Handler(reg, nil, adapter.MirrorStatus, adapter, nil, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)
	post(t, srv.URL+"/scrub?heal=1", http.StatusConflict)
	checkHealthy(t, get(t, srv.URL+"/healthz", http.StatusOK))
}

// TestHealthzWhileShedding: while the store sheds deliveries for
// space, /healthz answers 503 with the shed snapshot as JSON — the
// signal a load balancer uses to steer mail to a node with space —
// and returns to 200 (with the snapshot riding along) once released.
func TestHealthzWhileShedding(t *testing.T) {
	reg := obs.NewRegistry()
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{Users: 1, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)
	srv := httptest.NewServer(admin.Handler(reg, nil, adapter.MirrorStatus, adapter, nil, nil, adapter.ShedStatus))
	t.Cleanup(srv.Close)

	checkHealthy(t, get(t, srv.URL+"/healthz", http.StatusOK))

	adapter.ForceNoSpace()
	var st mailboatd.ShedStatus
	body := get(t, srv.URL+"/healthz", http.StatusServiceUnavailable)
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("shedding /healthz body %q: %v", body, err)
	}
	if !st.Shedding || st.Reason == "" {
		t.Fatalf("shedding /healthz snapshot = %+v", st)
	}
	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	if !strings.Contains(metrics, "shed_active 1") {
		t.Errorf("/metrics missing shed_active 1 while shedding")
	}

	adapter.ReleaseNoSpace()
	body = get(t, srv.URL+"/healthz", http.StatusOK)
	if !strings.Contains(body, `"shed"`) {
		t.Errorf("healthy /healthz should include the shed snapshot: %q", body)
	}
}

func TestHealthzFailure(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), func() error {
		return errors.New("listener down")
	}, nil, nil, nil, nil, nil))
	defer srv.Close()
	if body := get(t, srv.URL+"/healthz", http.StatusServiceUnavailable); !strings.Contains(body, "listener down") {
		t.Errorf("/healthz body: %q", body)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), nil, nil, nil, nil, nil, nil))
	defer srv.Close()
	if body := get(t, srv.URL+"/debug/pprof/", http.StatusOK); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %q", body)
	}
}

func post(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d (body %q)", url, resp.StatusCode, wantStatus, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

type lineConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &lineConn{conn: c, r: bufio.NewReader(c)}
}

func (l *lineConn) cmd(t *testing.T, line, wantPrefix string) {
	t.Helper()
	if line != "" {
		fmt.Fprintf(l.conn, "%s\r\n", line)
	}
	resp, err := l.r.ReadString('\n')
	if err != nil {
		t.Fatalf("after %q: %v", line, err)
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		t.Fatalf("after %q: got %q, want prefix %q", line, resp, wantPrefix)
	}
}
