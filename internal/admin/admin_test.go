package admin_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admin"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

// TestAdminEndToEnd is the in-tree version of the acceptance drill:
// boot the full server stack with metrics wired through every layer,
// push real SMTP/POP3 traffic, then scrape /metrics and check the
// deliver/pickup counters and latency histograms are live and nonzero.
func TestAdminEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	adapter, err := mailboatd.NewWithOptions(t.TempDir(), mailboatd.Options{
		Users:   4,
		Seed:    1,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)

	ss := smtp.NewServer(adapter, adapter.Users())
	ss.Metrics = smtp.NewMetrics(reg)
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(sl)
	t.Cleanup(func() { ss.Close() })

	ps := pop3.NewServer(adapter, adapter.Users())
	ps.Metrics = pop3.NewMetrics(reg)
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ps.Serve(pl)
	t.Cleanup(func() { ps.Close() })

	srv := httptest.NewServer(admin.Handler(reg, func() error { return nil }))
	t.Cleanup(srv.Close)

	// Drive one delivery and one pickup over the wire.
	s := dialLine(t, sl.Addr().String())
	s.cmd(t, "", "220")
	s.cmd(t, "MAIL FROM:<x@y>", "250")
	s.cmd(t, "RCPT TO:<user1@z>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "observable mail\r\n.\r\n")
	s.cmd(t, "", "250")
	s.cmd(t, "QUIT", "221")

	p := dialLine(t, pl.Addr().String())
	p.cmd(t, "", "+OK")
	p.cmd(t, "USER user1", "+OK")
	p.cmd(t, "PASS x", "+OK maildrop has 1")
	p.cmd(t, "DELE 1", "+OK")
	p.cmd(t, "QUIT", "+OK")

	if body := get(t, srv.URL+"/healthz", http.StatusOK); !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz body: %q", body)
	}

	metrics := get(t, srv.URL+"/metrics", http.StatusOK)
	for _, want := range []string{
		// Library layer: the delivery and pickup were counted and timed.
		"mailboat_deliver_attempts_total 1",
		"mailboat_deliver_committed_total 1",
		"mailboat_pickup_messages_total 1",
		"mailboat_deliver_seconds_count 1",
		"mailboat_pickup_seconds_count 1",
		"mailboat_delete_total 1",
		"mailboat_recover_total 1",
		// File-system layer: spool create happened and was timed.
		`gfs_ops_total{op="create"} `,
		`gfs_op_seconds_count{op="create"} `,
		// Adapter layer: outcomes by op.
		`mailboatd_ops_total{op="deliver",outcome="ok"} 1`,
		`mailboatd_ops_total{op="pickup",outcome="ok"} 1`,
		// Front ends: per-verb command counters and connection gauges.
		`smtp_commands_total{verb="DATA"} 1`,
		"smtp_connections_accepted_total 1",
		`pop3_commands_total{verb="PASS"} 1`,
		"pop3_connections_accepted_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", metrics)
	}
}

func TestHealthzFailure(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), func() error {
		return errors.New("listener down")
	}))
	defer srv.Close()
	if body := get(t, srv.URL+"/healthz", http.StatusServiceUnavailable); !strings.Contains(body, "listener down") {
		t.Errorf("/healthz body: %q", body)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := httptest.NewServer(admin.Handler(obs.NewRegistry(), nil))
	defer srv.Close()
	if body := get(t, srv.URL+"/debug/pprof/", http.StatusOK); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %q", body)
	}
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

type lineConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &lineConn{conn: c, r: bufio.NewReader(c)}
}

func (l *lineConn) cmd(t *testing.T, line, wantPrefix string) {
	t.Helper()
	if line != "" {
		fmt.Fprintf(l.conn, "%s\r\n", line)
	}
	resp, err := l.r.ReadString('\n')
	if err != nil {
		t.Fatalf("after %q: %v", line, err)
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		t.Fatalf("after %q: got %q, want prefix %q", line, resp, wantPrefix)
	}
}
