package suite

import (
	"testing"

	"repro/internal/explore"
)

// TestVerifiedSuiteAllClean is the test-suite form of
// cmd/perennial-check: every verified artifact's scenario must check
// clean.
func TestVerifiedSuiteAllClean(t *testing.T) {
	for _, e := range Verified() {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			opts := e.Opts
			if testing.Short() {
				opts.MaxExecutions = 1000
			}
			rep := explore.Run(e.Scenario, opts)
			t.Logf("%s", rep)
			if !rep.OK() {
				t.Fatalf("violation:\n%s", rep.Counterexample.Format())
			}
		})
	}
}

// TestBugSuiteAllFound requires each seeded bug to produce a
// counterexample.
func TestBugSuiteAllFound(t *testing.T) {
	for _, e := range Bugs() {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			rep := explore.Run(e.Scenario, e.Opts)
			t.Logf("%s", rep)
			if rep.OK() {
				t.Fatal("seeded bug not found")
			}
			if len(rep.Counterexample.Choices) == 0 {
				t.Fatal("counterexample has no reproduction choices")
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	v, b := Verified(), Bugs()
	if len(v) < 5 {
		t.Fatalf("verified suite too small: %d", len(v))
	}
	if len(b) < 5 {
		t.Fatalf("bug suite too small: %d", len(b))
	}
	patterns := map[string]bool{}
	for _, e := range All() {
		patterns[e.Pattern] = true
		if e.Scenario == nil || e.Scenario.Name == "" {
			t.Fatal("scenario missing a name")
		}
	}
	for _, want := range []string{"replicated-disk", "shadow-copy", "wal", "group-commit", "journal", "mailboat"} {
		if !patterns[want] {
			t.Fatalf("pattern %q missing from the suite", want)
		}
	}
}
