package suite

import (
	"testing"

	"repro/internal/explore"
)

// TestVerifiedSuiteAllClean is the test-suite form of
// cmd/perennial-check: every verified artifact's scenario must check
// clean.
func TestVerifiedSuiteAllClean(t *testing.T) {
	for _, e := range Verified() {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			opts := e.Opts
			if testing.Short() {
				opts.MaxExecutions = 1000
			}
			rep := explore.Run(e.Scenario, opts)
			t.Logf("%s", rep)
			if !rep.OK() {
				t.Fatalf("violation:\n%s", rep.Counterexample.Format())
			}
		})
	}
}

// TestBugSuiteAllFound requires each seeded bug to produce a
// counterexample.
func TestBugSuiteAllFound(t *testing.T) {
	for _, e := range Bugs() {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			rep := explore.Run(e.Scenario, e.Opts)
			t.Logf("%s", rep)
			if rep.OK() {
				t.Fatal("seeded bug not found")
			}
			if len(rep.Counterexample.Choices) == 0 {
				t.Fatal("counterexample has no reproduction choices")
			}
		})
	}
}

// TestDedupSelfCheckMailboatMirror runs the dedup soundness self-check
// (explore.SelfCheckDedup) on the mirrored-store scenario — the suite's
// richest fingerprint, covering the filesystem model, fault latches,
// chooser-policy budgets, and mirror control state. CI runs this at the
// -short budget; the full budget matches cmd/perennial-check -selfcheck.
func TestDedupSelfCheckMailboatMirror(t *testing.T) {
	for _, e := range Verified() {
		if e.Pattern != "mailboat-mirror" {
			continue
		}
		opts := e.Opts
		if testing.Short() {
			opts.MaxExecutions = 1000
		}
		with, without, err := explore.SelfCheckDedup(e.Scenario, opts)
		if err != nil {
			t.Fatalf("self-check failed: %v", err)
		}
		t.Logf("without dedup: %s", without)
		t.Logf("with dedup:    %s (%d boundaries, %d pruned)",
			with, with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
		return
	}
	t.Fatal("mailboat-mirror entry missing from the verified suite")
}

// TestHeaviestAreVerifiedEntries pins Heaviest() to real suite entries.
func TestHeaviestAreVerifiedEntries(t *testing.T) {
	hs := Heaviest()
	if len(hs) != 3 {
		t.Fatalf("want 3 heaviest scenarios, got %d", len(hs))
	}
	for _, e := range hs {
		if e.Scenario == nil {
			t.Fatal("Heaviest() returned an entry missing from Verified()")
		}
		if e.Scenario.Fingerprint == nil {
			t.Fatalf("%s: heaviest scenario has no Fingerprint hook (benchmarks need the dedup leg)", e.Scenario.Name)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	v, b := Verified(), Bugs()
	if len(v) < 5 {
		t.Fatalf("verified suite too small: %d", len(v))
	}
	if len(b) < 5 {
		t.Fatalf("bug suite too small: %d", len(b))
	}
	patterns := map[string]bool{}
	for _, e := range All() {
		patterns[e.Pattern] = true
		if e.Scenario == nil || e.Scenario.Name == "" {
			t.Fatal("scenario missing a name")
		}
	}
	for _, want := range []string{"replicated-disk", "shadow-copy", "wal", "group-commit", "journal", "mailboat"} {
		if !patterns[want] {
			t.Fatalf("pattern %q missing from the suite", want)
		}
	}
}
