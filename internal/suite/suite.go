// Package suite assembles the canonical verification suite: every
// verified artifact's model-checking scenario plus the seeded-bug
// variants that must produce counterexamples. cmd/perennial-check runs
// it (the reproduction's analog of `coqc` checking the paper's proofs),
// and the Table 3 benchmarks measure it.
package suite

import (
	"repro/internal/examples/groupcommit"
	"repro/internal/examples/replicateddisk"
	"repro/internal/examples/shadowcopy"
	"repro/internal/examples/wal"
	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/journal"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/repl"
)

// Entry is one scenario plus how to run it and what to expect.
type Entry struct {
	// Pattern groups entries by paper artifact ("replicated-disk",
	// "shadow-copy", "wal", "group-commit", "mailboat").
	Pattern string
	// Scenario is the checkable system.
	Scenario *explore.Scenario
	// Opts bounds the exploration.
	Opts explore.Options
	// WantViolation is true for seeded-bug entries.
	WantViolation bool
}

// Verified returns the scenarios that must check clean, covering all
// four crash-safety patterns of §9.1 plus Mailboat.
func Verified() []Entry {
	return []Entry{
		{
			Pattern: "replicated-disk",
			Scenario: replicateddisk.Verified("rd/two-writers+crash", replicateddisk.ScenarioOptions{
				Size:       1,
				Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
				MaxCrashes: 1,
				PostReads:  []uint64{0},
			}),
			Opts: explore.Options{MaxExecutions: 5000},
		},
		{
			Pattern: "replicated-disk",
			Scenario: replicateddisk.Verified("rd/failover", replicateddisk.ScenarioOptions{
				Size:       1,
				Writers:    []replicateddisk.OpWrite{{A: 0, V: 3}},
				D1MayFail:  true,
				MaxCrashes: 1,
				PostReads:  []uint64{0, 0},
			}),
			Opts: explore.Options{MaxExecutions: 5000},
		},
		{
			Pattern: "shadow-copy",
			Scenario: shadowcopy.Scenario("sc/writer+reader+crash", shadowcopy.VariantVerified, shadowcopy.ScenarioOptions{
				Writers:    []shadowcopy.OpWrite{{V1: 1, V2: 2}},
				Readers:    1,
				MaxCrashes: 1,
				PostReads:  1,
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			Pattern: "wal",
			Scenario: wal.Scenario("wal/txn+double-crash", wal.VariantVerified, wal.ScenarioOptions{
				Writers:    []wal.OpWrite{{V1: 1, V2: 2}},
				MaxCrashes: 2,
				PostReads:  1,
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			Pattern: "group-commit",
			Scenario: groupcommit.Scenario("gc/write+flush+crash", groupcommit.VariantVerified, groupcommit.ScenarioOptions{
				Steps:      []groupcommit.Step{{Write: &groupcommit.OpWrite{V1: 1, V2: 2}}, {Flush: true}},
				MaxCrashes: 1,
				PostReads:  1,
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			Pattern: "journal",
			Scenario: journal.Scenario("journal/txn+double-crash", journal.VariantVerified, journal.ScenarioOptions{
				Size:       2,
				Txns:       [][]journal.Write{{{A: 0, V: 1}, {A: 1, V: 2}}},
				MaxCrashes: 2,
				PostReads:  []uint64{0, 1},
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			Pattern: "mailboat",
			Scenario: mailboat.Scenario("mb/deliver+pickup+crash", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PickupUsers: []uint64{0},
				MaxCrashes:  1,
				PostPickups: true,
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			Pattern: "mailboat-buffered",
			Scenario: mailboat.Scenario("mb/buffered-fs+fsync", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "fsynced"}},
				MaxCrashes:  1,
				PostPickups: true,
				BufferedFS:  true,
			}),
			Opts: explore.Options{MaxExecutions: 10000},
		},
		{
			// Full writeback semantics: un-synced directory operations are
			// lost (prefix-per-directory) at a crash alongside un-synced
			// file data. The disciplined implementation — fsync before
			// link, SyncDir before every ack — must still refine the spec
			// while the explorer enumerates every surviving prefix.
			Pattern: "mailboat-writeback",
			Scenario: mailboat.Scenario("mb/writeback+sync-discipline", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "durable"}},
				PickupUsers: []uint64{0},
				MaxCrashes:  1,
				PostPickups: true,
				Writeback:   true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// FaultSync × writeback: the chooser may fail any Sync or
			// SyncDir while the crash enumeration drops un-synced state. A
			// failed barrier is not a barrier — the implementation must
			// abandon the spool file (fsyncgate) or retry the directory
			// sync, never ack on the failed attempt.
			Pattern: "mailboat-writeback",
			Scenario: mailboat.Scenario("mb/writeback+failed-sync", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "barrier"}},
				MaxCrashes:  1,
				PostPickups: true,
				Writeback:   true,
				FaultBudget: 1,
				FaultOps:    []gfs.FaultOp{gfs.FaultSync},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// The honest contract of the barrier-free fast mode (mailboatd
			// -no-fsync): no refinement — acked mail may be taken back —
			// but the surviving mailbox must be a no-holes prefix of the
			// delivery order, with torn bodies only where a link outlived
			// its data. This is the checked spec behind the README caveat.
			Pattern: "mailboat-writeback",
			Scenario: mailboat.Scenario("mb/writeback+prefix-contract", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:         mailboat.Config{Users: 1, RandBound: 4},
				Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "first"}, {User: 0, Msg: "second"}, {User: 0, Msg: "third"}},
				MaxCrashes:     1,
				Writeback:      true,
				PrefixContract: true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Disk-full as a first-class fault: the chooser may latch the
			// store ENOSPC at any eligible write (budget 1), after which
			// every write fails until a delete frees space. The annotated
			// implementation must abort cleanly — never ack-then-lose —
			// under concurrent delivery and pickup, and full refinement
			// holds: an aborted delivery is the spec's transient failure,
			// nothing more. Exhaustive (the search completes) at this
			// budget; the crash × latch interaction is gc-reclaims' job.
			Pattern: "mailboat-nospace",
			Scenario: mailboat.Scenario("mb/nospace+clean-abort", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PickupUsers: []uint64{0},
				PostPickups: true,
				FaultBudget: 1,
				FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
			}),
			Opts: explore.Options{MaxExecutions: 40000},
		},
		{
			// The exhaustion contract as a property, with the latch crossing
			// TWO crash/recovery boundaries (also the regression gate for
			// durable-latch budget accounting: a latched class replayed
			// across eras must not re-spend the chooser budget). Acked mail
			// survives ENOSPC, recovery's orphan-spool sweep doubles as the
			// garbage collector that returns space, and post-recovery
			// writability tracks the latch — freed space must accept a
			// probe delivery, a still-full store must refuse it cleanly.
			// Exhaustive at this budget.
			Pattern: "mailboat-nospace",
			Scenario: mailboat.Scenario("mb/nospace+gc-reclaims", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				MaxCrashes:  2,
				FaultBudget: 1,
				FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
				NoSpaceGC:   true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Table 3 parity with rd/failover, on the full server: the
			// mirrored store must refine the spec while the explorer kills
			// one replica at any operation and crashes at any step, with
			// recovery resilvering the replacement back to byte-identical.
			Pattern: "mailboat-mirror",
			Scenario: mailboat.Scenario("mb/mirror+replica-death+crash", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				MaxCrashes:  1,
				PostPickups: true,
				Mirror:      true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Silent corruption on a single backend: the chooser may
			// durably flip or truncate one file's bytes at any open. With
			// no redundant copy the property is detection, not refinement:
			// a pickup must never serve bytes nobody delivered, and an
			// acked message may only go missing if the envelope layer
			// detected rot.
			Pattern: "mailboat-corrupt",
			Scenario: mailboat.Scenario("mb/corrupt+scrub", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "the quick brown fox."}},
				MaxCrashes:  1,
				PostPickups: true,
				Corrupt:     true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Silent corruption on the mirrored store: per-replica
			// envelopes, heal-on-read, the resilver's integrity gate, and
			// the recovery scrub together make rot invisible — full
			// refinement plus the byte-identical invariant hold.
			Pattern: "mailboat-mirror-corrupt",
			Scenario: mailboat.Scenario("mb/mirror+corrupt-heal", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "m"}},
				MaxCrashes:  1,
				PostPickups: true,
				Mirror:      true,
				Corrupt:     true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Primary/backup replication over the modeled lossy network:
			// one whole-site crash may interleave with one enumerated
			// network fault (drop, duplicate, reorder, partition burst,
			// dropped reply); recovery re-elects by epoch and resyncs. The
			// acked history must refine the UNCHANGED atomic mailboat spec
			// and settled stores must be byte-identical.
			Pattern: "mailboat-repl",
			Scenario: repl.Scenario("mb/replicated+crash+net", repl.ScenarioOptions{
				Config:         mailboat.Config{Users: 1, RandBound: 4, SyncOnDeliver: true, SyncDirs: true},
				Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PickupUsers:    []uint64{0},
				PostPickups:    true,
				MaxCrashes:     1,
				NetFaultBudget: 1,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Fail-stop of either node at any operation: the failover path
			// (promote by epoch, ack alone) must keep every acked
			// operation visible.
			Pattern: "mailboat-repl",
			Scenario: repl.Scenario("mb/replicated+failstop", repl.ScenarioOptions{
				Config:           mailboat.Config{Users: 1, RandBound: 4, SyncOnDeliver: true, SyncDirs: true},
				Delivers:         []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PickupUsers:      []uint64{0},
				PostPickups:      true,
				StoreFaultBudget: 1,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
	}
}

// Bugs returns the seeded-bug scenarios that must produce
// counterexamples (§1, §3.1, §9.5).
func Bugs() []Entry {
	return []Entry{
		{
			Pattern:       "replicated-disk",
			WantViolation: true,
			Scenario: replicateddisk.BugNoRecovery("rd/bug:no-recovery", replicateddisk.ScenarioOptions{
				Size:       1,
				Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}},
				D1MayFail:  true,
				MaxCrashes: 1,
				PostReads:  []uint64{0, 0},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "replicated-disk",
			WantViolation: true,
			Scenario: replicateddisk.BugZeroingRecovery("rd/bug:zeroing-recovery", replicateddisk.ScenarioOptions{
				Size:       1,
				Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
				MaxCrashes: 1,
				PostReads:  []uint64{0},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "shadow-copy",
			WantViolation: true,
			Scenario: shadowcopy.Scenario("sc/bug:in-place-write", shadowcopy.VariantInPlace, shadowcopy.ScenarioOptions{
				Writers:    []shadowcopy.OpWrite{{V1: 1, V2: 2}},
				MaxCrashes: 1,
				PostReads:  1,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "wal",
			WantViolation: true,
			Scenario: wal.Scenario("wal/bug:recover-clear-only", wal.VariantRecoverClearOnly, wal.ScenarioOptions{
				Writers:    []wal.OpWrite{{V1: 1, V2: 2}},
				MaxCrashes: 1,
				PostReads:  1,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "group-commit",
			WantViolation: true,
			Scenario: groupcommit.Scenario("gc/bug:racy-read", groupcommit.VariantRacyRead, groupcommit.ScenarioOptions{
				Steps: []groupcommit.Step{{Write: &groupcommit.OpWrite{V1: 1, V2: 2}}, {Read: true}},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "journal",
			WantViolation: true,
			Scenario: journal.Scenario("journal/bug:recover-skips-redo", journal.VariantRecoverSkip, journal.ScenarioOptions{
				Size:       2,
				Txns:       [][]journal.Write{{{A: 0, V: 1}, {A: 1, V: 2}}},
				MaxCrashes: 1,
				PostReads:  []uint64{0, 1},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "mailboat",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/bug:unspooled-delivery", mailboat.VariantDeliverDirect, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "full message"}},
				PickupUsers: []uint64{0},
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			Pattern:       "mailboat-buffered",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/bug:buffered-fs-no-fsync", mailboat.VariantVerified, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "needs fsync"}},
				MaxCrashes:  1,
				PostPickups: true,
				BufferedFS:  true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Recovery that swaps in the replacement replica but forgets
			// to resilver it: the replacement serves stale reads (or the
			// mirror stays flagged degraded with both replicas live).
			Pattern:       "mailboat-mirror",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/mirror-bug:no-resilver", mailboat.VariantRecoverNoResilver, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				MaxCrashes:  1,
				PostPickups: true,
				Mirror:      true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// The envelope layer decodes without verifying checksums: a
			// bit flip in a data payload is served to a pickup as bytes
			// nobody sent, and a flip that breaks framing loses the
			// message with the detection counter still at zero — both
			// convicted by the detection property.
			Pattern:       "mailboat-corrupt",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/integrity-bug:trust-read", mailboat.VariantTrustReads, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "the quick brown fox."}},
				MaxCrashes:  1,
				PostPickups: true,
				Corrupt:     true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// The resilver copies source bytes without checking their
			// envelope: rot injected at the resilver's own read of the
			// source replicates onto the peer, leaving an ACKED message
			// unreadable everywhere — a refinement violation at the post
			// pickup. Two concurrent delivers let the first be acked
			// before the crash.
			Pattern:       "mailboat-mirror-corrupt",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/integrity-bug:no-verify-resilver", mailboat.VariantResilverNoVerify, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
				MaxCrashes:  1,
				PostPickups: true,
				Mirror:      true,
				Corrupt:     true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// A recovery that replays leftover spool files into the
			// mailbox, wrongly assuming a crashed spool file is either
			// empty or complete: only a TORN crash tail — a partial
			// prefix of the delivery's one-byte appends — exposes it.
			Pattern:       "mailboat-buffered",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/torn-bug:replay-spool", mailboat.VariantReplaySpool, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "ab"}},
				MaxCrashes:  1,
				PostPickups: true,
				BufferedFS:  true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// The classic missing-fsync-of-the-directory bug: the deliver
			// fsyncs the spool data but acks as soon as the link lands,
			// without a SyncDir barrier. Under writeback the crash drops
			// the un-synced directory entry and the ACKED message is
			// gone — a refinement violation at the post pickup. Two
			// concurrent delivers so the crash can land after the first
			// one acks (a lone deliver has no machine step left to crash
			// at once it returns).
			Pattern:       "mailboat-writeback",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/sync-bug:ack-before-sync", mailboat.VariantAckBeforeSync, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "acked"}, {User: 0, Msg: "racer"}},
				MaxCrashes:  1,
				PostPickups: true,
				Writeback:   true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// The dual bug on the delete path: the unlink is acked with no
			// directory barrier, the crash resurrects the entry from the
			// durable view, and recovery trusts whatever entries survived.
			// The post pickup then returns a message the spec already
			// deleted — no linearization exists.
			Pattern:       "mailboat-writeback",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/sync-bug:recover-trusts-cache", mailboat.VariantRecoverTrustsCache, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "doomed"}},
				PickupUsers: []uint64{0},
				MaxCrashes:  1,
				PostPickups: true,
				Writeback:   true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// Acking a delivery the full disk refused: nothing was
			// published — the spool write never landed — but the client
			// hears yes. Convicted by the exhaustion property's acked-loss
			// audit after the final recovery.
			Pattern:       "mailboat-nospace",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/nospace-bug:ack-after-enospc", mailboat.VariantDeliverAckOnNoSpace, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 3},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				MaxCrashes:  1,
				FaultBudget: 1,
				FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
				NoSpaceGC:   true,
			}),
			Opts: explore.Options{MaxExecutions: 20000},
		},
		{
			// A delivery-time "GC" that sweeps the whole spool directory on
			// ENOSPC: recovery may sweep (it runs single-threaded, where
			// every spool file is an orphan), but during operation a spool
			// file may be a concurrent delivery's live, not-yet-linked
			// message — eating it makes that delivery's link source vanish,
			// which the model's link assertion catches red-handed.
			Pattern:       "mailboat-nospace",
			WantViolation: true,
			Scenario: mailboat.Scenario("mb/nospace-bug:gc-eats-live-spool", mailboat.VariantDeliverGreedySpoolGC, mailboat.ScenarioOptions{
				Config:      mailboat.Config{Users: 1, RandBound: 4},
				Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
				FaultBudget: 1,
				FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
				NoSpaceGC:   true,
			}),
			Opts: explore.Options{MaxExecutions: 40000},
		},
		{
			// The replication layer's analogue of acking before fsync: the
			// primary acks after its local publish without waiting for the
			// backup. A fail-stop of the primary right after the ack and a
			// failover to the never-told backup lose acked mail.
			Pattern:       "mailboat-repl",
			WantViolation: true,
			Scenario: repl.Scenario("mb/repl-bug:ack-before-backup", repl.ScenarioOptions{
				Config:           mailboat.Config{Users: 1, RandBound: 4, SyncOnDeliver: true, SyncDirs: true},
				Delivers:         []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PickupUsers:      []uint64{0},
				PostPickups:      true,
				StoreFaultBudget: 1,
				Mut:              repl.Mutations{AckBeforeBackup: true},
			}),
			Opts: explore.Options{MaxExecutions: 400000},
		},
		{
			// Catch-up resync without an epoch bump: a reordered replicate
			// frame held across a site crash lands after the catch-up,
			// walks through the un-bumped epoch gate, and consumes a
			// sequence number in the new run's space — the stores diverge.
			// No main-era pickup thread: the post-era session exposes it
			// and keeps the search shallow.
			Pattern:       "mailboat-repl",
			WantViolation: true,
			Scenario: repl.Scenario("mb/repl-bug:resync-skips-epoch", repl.ScenarioOptions{
				Config:         mailboat.Config{Users: 1, RandBound: 4, SyncOnDeliver: true, SyncDirs: true},
				Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
				PostPickups:    true,
				MaxCrashes:     1,
				NetFaultBudget: 1,
				NetFaults:      []netmodel.Fault{netmodel.FaultReorder},
				Mut:            repl.Mutations{ResyncSkipsEpoch: true},
			}),
			Opts: explore.Options{MaxExecutions: 400000},
		},
	}
}

// All returns the verified scenarios followed by the bug scenarios.
func All() []Entry {
	return append(Verified(), Bugs()...)
}

// Heaviest returns the verified scenarios that dominate suite wall
// clock, in decreasing order of cost. These are the benchmark targets
// for the parallel search and dedup measurements (BENCH_explore.json,
// EXPERIMENTS.md) and the scenarios worth tuning -workers for.
func Heaviest() []Entry {
	names := map[string]int{
		"mb/deliver+pickup+crash": 0,
		"gc/write+flush+crash":    1,
		"sc/writer+reader+crash":  2,
	}
	out := make([]Entry, len(names))
	for _, e := range Verified() {
		if i, ok := names[e.Scenario.Name]; ok {
			out[i] = e
		}
	}
	return out
}
