package wal

import (
	"testing"

	"repro/internal/explore"
)

func TestSpecAtomicPair(t *testing.T) {
	sp := Spec()
	st := sp.Init()
	next, ub := sp.Step(st, OpWrite{V1: 4, V2: 5}, nil)
	if ub || len(next) != 1 {
		t.Fatalf("write: %v %v", next, ub)
	}
	st = next[0]
	if n, _ := sp.Step(st, OpRead{}, Pair{V1: 4, V2: 5}); len(n) != 1 {
		t.Fatal("read of committed pair rejected")
	}
	if n, _ := sp.Step(st, OpRead{}, Pair{V1: 4, V2: 0}); len(n) != 0 {
		t.Fatal("torn pair accepted")
	}
}

func TestVerifiedSequential(t *testing.T) {
	s := Scenario("wal-seq", VariantVerified, ScenarioOptions{
		Writers:   []OpWrite{{V1: 1, V2: 2}},
		PostReads: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedCrashEverywhereExhaustive(t *testing.T) {
	// One transaction, crash at every possible point, including during
	// recovery's redo (MaxCrashes 2 exercises recovery idempotence).
	s := Scenario("wal-crash", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 2,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedHelpingWindowExplicit(t *testing.T) {
	// Drive the exact committed-but-unapplied window: run the writer up
	// to just after the commit write, crash, recover, and check the
	// post-crash read sees the committed values.
	s := Scenario("wal-helping", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 7, V2: 8}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	// Init era is crash-free; the main era offers (run, crash) at every
	// point. The writer's step sequence is: acquire, log1, log2, commit,
	// data1, data2, clear, release. Choosing "run" until just after the
	// commit write and then "crash" lands in the helping window.
	// We find it by exhaustive search and assert at least one crashed
	// execution ended with the new values (meaning helping fired).
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedConcurrentTransactions(t *testing.T) {
	s := Scenario("wal-conc", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}, {V1: 3, V2: 4}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedWithReader(t *testing.T) {
	s := Scenario("wal-reader", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		Readers:    1,
		MaxCrashes: 1,
		PostReads:  1,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugNoLogTornWriteFound(t *testing.T) {
	s := Scenario("wal-bug-nolog", VariantNoLog, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("in-place torn write not found")
	}
}

func TestBugRecoverClearOnlyFound(t *testing.T) {
	s := Scenario("wal-bug-clearonly", VariantRecoverClearOnly, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("clear-without-apply recovery bug not found")
	}
}
