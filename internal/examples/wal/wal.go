// Package wal implements the write-ahead-logging crash-safety pattern of
// §9.1 (Table 3): an atomic update of a pair of disk blocks that first
// records the new values in a log, commits them by setting a flag, and
// then applies them to the data blocks. Recovery completes a committed
// but unapplied transaction by copying the log to the data blocks — the
// proof of that copy uses recovery helping (§5.4): the transaction's
// j ⤇ op token is deposited in the crash invariant at commit time, and
// recovery withdraws it to simulate the operation on the dead thread's
// behalf.
//
// Disk layout (single disk, no failures):
//
//	block 0: commit flag (0 = empty log, 1 = committed)
//	blocks 1,2: log entries
//	blocks 3,4: data blocks
package wal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// DiskSize is the number of blocks the pattern uses.
const DiskSize = 5

const (
	addrFlag  = 0
	addrLog1  = 1
	addrLog2  = 2
	addrData1 = 3
	addrData2 = 4
)

// State is the spec state: the logical pair.
type State struct {
	V1, V2 uint64
}

// OpRead reads the pair atomically.
type OpRead struct{}

func (OpRead) String() string { return "read_pair()" }

// OpWrite sets the pair atomically.
type OpWrite struct{ V1, V2 uint64 }

func (o OpWrite) String() string { return fmt.Sprintf("txn_write(%d, %d)", o.V1, o.V2) }

// Pair is OpRead's return value.
type Pair struct{ V1, V2 uint64 }

// Spec is the same atomic-pair specification as shadowcopy's: writes
// are atomic and durable once they return; crash loses nothing.
func Spec() spec.Interface {
	return &spec.TSL[State]{
		SpecName: "wal-pair",
		Initial:  State{},
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpRead:
				return tsl.Gets(func(s State) spec.Ret { return Pair{V1: s.V1, V2: s.V2} })
			case OpWrite:
				return tsl.Then(
					tsl.Modify(func(State) State { return State{V1: o.V1, V2: o.V2} }),
					tsl.Ret[State, spec.Ret](nil))
			default:
				panic(fmt.Sprintf("wal: unknown op %T", op))
			}
		},
	}
}

// WAL is the logged pair object for one era.
type WAL struct {
	d    *disk.Disk
	lock *machine.Lock

	g       *core.Ctx
	masters [DiskSize]*core.Master
	leases  [DiskSize]*core.Lease
}

// New boots the object on a fresh disk (flag 0, everything zero).
func New(t *machine.T, g *core.Ctx, d *disk.Disk) *WAL {
	w := &WAL{d: d, g: g}
	w.lock = machine.NewLock(t, "wal")
	if g != nil {
		for a := 0; a < DiskSize; a++ {
			w.masters[a], w.leases[a] = g.NewDurable(t, fmt.Sprintf("wal[%d]", a), d.Peek(uint64(a)))
			g.DepositMaster(t, w.masters[a])
		}
	}
	return w
}

// ReadPair returns the current pair under the object lock. Because the
// lock serializes transactions, the data blocks are authoritative
// whenever the lock is free; a reader that takes the lock mid-crash
// cannot exist (crashes kill all threads).
func (w *WAL) ReadPair(t *machine.T, j *core.JTok) Pair {
	w.lock.Acquire(t)
	v1, _ := w.d.Read(t, addrData1)
	v2, _ := w.d.Read(t, addrData2)
	if w.g != nil {
		if want := w.leases[addrData1].Value(t).(uint64); want != v1 {
			t.Failf("capability mismatch: data1=%d, lease asserts %d", v1, want)
		}
		if want := w.leases[addrData2].Value(t).(uint64); want != v2 {
			t.Failf("capability mismatch: data2=%d, lease asserts %d", v2, want)
		}
		if j != nil {
			w.g.StepSim(t, j, Pair{V1: v1, V2: v2})
		}
	}
	w.lock.Release(t)
	return Pair{V1: v1, V2: v2}
}

// WritePair runs one transaction: log the new values, commit by setting
// the flag, apply to the data blocks, and clear the flag. The j ⤇ op
// token is deposited just before the commit write; if the transaction
// completes, it withdraws the token and simulates its own step in the
// same atomic turn as the flag-clear effect. A crash in the committed
// window leaves the token for recovery helping.
func (w *WAL) WritePair(t *machine.T, j *core.JTok, v1, v2 uint64) {
	w.lock.Acquire(t)

	// Log the transaction.
	w.d.Write(t, addrLog1, v1)
	if w.g != nil {
		w.g.Update(t, w.masters[addrLog1], w.leases[addrLog1], v1, nil)
	}
	w.d.Write(t, addrLog2, v2)
	if w.g != nil {
		w.g.Update(t, w.masters[addrLog2], w.leases[addrLog2], v2, nil)
		if j != nil {
			w.g.DepositHelping(t, j)
		}
	}

	// Commit.
	w.d.Write(t, addrFlag, 1)
	if w.g != nil {
		w.g.Update(t, w.masters[addrFlag], w.leases[addrFlag], uint64(1), nil)
	}

	// Apply.
	w.d.Write(t, addrData1, v1)
	if w.g != nil {
		w.g.Update(t, w.masters[addrData1], w.leases[addrData1], v1, nil)
	}
	w.d.Write(t, addrData2, v2)
	if w.g != nil {
		w.g.Update(t, w.masters[addrData2], w.leases[addrData2], v2, nil)
	}

	// Clear the flag; the transaction's spec step happens in the same
	// atomic turn as this write's effect.
	w.d.Write(t, addrFlag, 0)
	if w.g != nil {
		w.g.Update(t, w.masters[addrFlag], w.leases[addrFlag], uint64(0), nil)
		if j != nil {
			w.g.WithdrawHelping(t, j)
			w.g.StepSim(t, j, nil)
		}
	}
	w.lock.Release(t)
}

// Recover reboots the object. If the commit flag is set, some
// transaction committed but did not finish applying: recovery copies the
// log onto the data blocks and clears the flag, using the deposited
// helping token to justify the transaction's spec step (§5.4). Recovery
// is idempotent: a crash mid-recovery leaves the flag set and the log
// intact, so the rerun redoes the copy.
func Recover(t *machine.T, old *WAL) *WAL {
	w := &WAL{d: old.d, g: old.g}
	w.lock = machine.NewLock(t, "wal")
	g := old.g
	if g != nil {
		for a := 0; a < DiskSize; a++ {
			w.masters[a], w.leases[a] = old.masters[a].Resynthesize(t)
			g.DepositMaster(t, w.masters[a])
		}
	}

	flag, _ := w.d.Read(t, addrFlag)
	if flag == 1 {
		v1, _ := w.d.Read(t, addrLog1)
		v2, _ := w.d.Read(t, addrLog2)

		w.d.Write(t, addrData1, v1)
		if g != nil {
			g.Update(t, w.masters[addrData1], w.leases[addrData1], v1, nil)
		}
		w.d.Write(t, addrData2, v2)
		if g != nil {
			g.Update(t, w.masters[addrData2], w.leases[addrData2], v2, nil)
		}

		w.d.Write(t, addrFlag, 0)
		if g != nil {
			// Ghost-atomically with the flag clear: complete the crashed
			// transaction via its helping token, unless an earlier
			// recovery attempt already helped it (crash mid-recovery).
			helped := false
			for _, tok := range g.HelpingTokens() {
				if wr, isW := tok.Op().(OpWrite); isW && wr.V1 == v1 && wr.V2 == v2 {
					g.Help(t, tok)
					helped = true
					break
				}
			}
			if !helped && !alreadyApplied(g, v1, v2) {
				t.Failf("recovery found committed txn (%d,%d) with no helping token", v1, v2)
			}
			g.Update(t, w.masters[addrFlag], w.leases[addrFlag], uint64(0), nil)
		}
	}
	if g != nil && g.CrashPending() {
		g.CrashSim(t)
	}
	return w
}

// alreadyApplied reports whether the source state already reflects the
// committed transaction — the case where a previous recovery attempt
// helped the token and then crashed between the data writes and the
// flag clear.
func alreadyApplied(g *core.Ctx, v1, v2 uint64) bool {
	s, ok := g.Source().(State)
	return ok && s.V1 == v1 && s.V2 == v2
}

// WriteNoLog is the buggy variant that skips the log entirely and
// updates the data blocks in place: a crash between the two writes
// leaves a torn pair. Unverified.
func (w *WAL) WriteNoLog(t *machine.T, v1, v2 uint64) {
	w.lock.Acquire(t)
	w.d.Write(t, addrData1, v1)
	w.d.Write(t, addrData2, v2)
	w.lock.Release(t)
}

// RecoverClearOnly is the buggy recovery that clears the commit flag
// without applying the log: a committed transaction that crashed
// mid-apply leaves a torn pair behind. Unverified.
func RecoverClearOnly(t *machine.T, old *WAL) *WAL {
	w := &WAL{d: old.d}
	w.lock = machine.NewLock(t, "wal")
	w.d.Write(t, addrFlag, 0)
	return w
}
