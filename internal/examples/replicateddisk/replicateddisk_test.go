package replicateddisk

import (
	"strings"
	"testing"

	"repro/internal/explore"
)

func TestSpecMatchesFigure3(t *testing.T) {
	sp := Spec(2)
	st := sp.Init()
	// write in bounds
	next, ub := sp.Step(st, OpWrite{A: 1, V: 7}, nil)
	if ub || len(next) != 1 {
		t.Fatalf("write: next=%v ub=%v", next, ub)
	}
	st = next[0]
	// read back
	next, ub = sp.Step(st, OpRead{A: 1}, uint64(7))
	if ub || len(next) != 1 {
		t.Fatalf("read: next=%v ub=%v", next, ub)
	}
	// read with the wrong value is not allowed
	next, _ = sp.Step(st, OpRead{A: 1}, uint64(8))
	if len(next) != 0 {
		t.Fatal("read of wrong value allowed")
	}
	// out of bounds is UB
	if _, ub = sp.Step(st, OpRead{A: 9}, uint64(0)); !ub {
		t.Fatal("out-of-bounds read not UB")
	}
	if _, ub = sp.Step(st, OpWrite{A: 9, V: 0}, nil); !ub {
		t.Fatal("out-of-bounds write not UB")
	}
	// crash loses nothing
	if sp.Key(sp.Crash(st)) != sp.Key(st) {
		t.Fatal("crash transition must be the identity")
	}
}

func TestVerifiedSequentialSmoke(t *testing.T) {
	s := Verified("rd-seq", ScenarioOptions{
		Size:      2,
		Writers:   []OpWrite{{A: 0, V: 1}},
		PostReads: []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1})
	if !rep.OK() {
		t.Fatalf("sequential run failed:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedConcurrentWritersExhaustive(t *testing.T) {
	// Two writers to the same address plus crash injection; the full
	// bounded space must be clean.
	s := Verified("rd-2w", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		MaxCrashes: 1,
		PostReads:  []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Logf("note: search was budget-bounded at %d executions", rep.Executions)
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("exploration never exercised a crash")
	}
}

func TestVerifiedWriterReaderConcurrent(t *testing.T) {
	s := Verified("rd-wr", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 5}},
		Readers:    []uint64{0},
		MaxCrashes: 1,
		PostReads:  []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedFailoverExhaustive(t *testing.T) {
	// Disk 1 may fail at any read; reads must transparently fail over.
	s := Verified("rd-failover", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 3}},
		D1MayFail:  true,
		MaxCrashes: 1,
		PostReads:  []uint64{0, 0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedTwoAddressesWithCrash(t *testing.T) {
	s := Verified("rd-2addr", ScenarioOptions{
		Size:       2,
		Writers:    []OpWrite{{A: 0, V: 1}, {A: 1, V: 2}},
		MaxCrashes: 1,
		PostReads:  []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 60000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugNoRecoveryFoundBySearch(t *testing.T) {
	// §3.1: crash between the two disk writes leaves the disks out of
	// sync; with no recovery, a disk-1 failure exposes the old value.
	s := BugNoRecovery("rd-bug-norecovery", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 1}},
		D1MayFail:  true,
		MaxCrashes: 1,
		PostReads:  []uint64{0, 0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("missing-recovery bug not found")
	}
	if !strings.Contains(rep.Counterexample.Reason, "refinement failure") {
		t.Fatalf("unexpected failure kind:\n%s", rep.Counterexample.Format())
	}
}

func TestBugZeroingRecoveryFoundBySearch(t *testing.T) {
	// §1: recovery that zeroes both disks reverts a completed write.
	s := BugZeroingRecovery("rd-bug-zeroing", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		MaxCrashes: 1,
		PostReads:  []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("zeroing-recovery bug not found")
	}
}

func TestBugD1OnlyFoundBySearch(t *testing.T) {
	// Writes that skip disk 2 are exposed by failover even without a
	// crash.
	s := BugD1Only("rd-bug-d1only", ScenarioOptions{
		Size:      1,
		Writers:   []OpWrite{{A: 0, V: 1}},
		D1MayFail: true,
		PostReads: []uint64{0, 0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("d1-only bug not found")
	}
}

func TestBugNoLockFoundBySearch(t *testing.T) {
	// Unlocked writes let the two disks disagree about the final value;
	// failover then observes value flapping.
	s := BugNoLock("rd-bug-nolock", ScenarioOptions{
		Size:      1,
		Writers:   []OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		D1MayFail: true,
		PostReads: []uint64{0, 0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 400000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("lock-free write bug not found")
	}
}

func TestCounterexampleIsReplayable(t *testing.T) {
	s := BugZeroingRecovery("rd-bug-zeroing-replay", ScenarioOptions{
		Size:       1,
		Writers:    []OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		MaxCrashes: 1,
		PostReads:  []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	if rep.OK() {
		t.Fatal("expected a counterexample")
	}
	trace, _, reason := explore.Replay(s, rep.Counterexample.Choices)
	if reason == "" {
		t.Fatal("replaying the counterexample choices did not reproduce the failure")
	}
	if len(trace) == 0 {
		t.Fatal("replay produced no trace")
	}
}

func TestVerifiedStressRandomized(t *testing.T) {
	s := Verified("rd-stress", ScenarioOptions{
		Size:       2,
		Writers:    []OpWrite{{A: 0, V: 1}, {A: 1, V: 2}, {A: 0, V: 3}},
		Readers:    []uint64{0, 1},
		MaxCrashes: 2,
		PostReads:  []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1, StressExecutions: 2000, StressSeed: 42})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under stress:\n%s", rep.Counterexample.Format())
	}
}
