// Package replicateddisk is the paper's running example (Figures 1 and
// 3–6): a concurrent disk-replication library that sends writes to two
// physical disks and falls back to the second disk when a read on the
// first fails, with a per-address lock for linearizability and a
// recovery procedure that copies disk 1 onto disk 2 to complete or
// discard writes interrupted by a crash.
//
// The verified implementation threads a core.Ctx through its code: each
// (disk, address) pair has a master/lease capability, masters live in
// the crash invariant, leases are protected by the per-address locks,
// and an in-flight write deposits its j ⤇ op token in the crash
// invariant so recovery may complete it (recovery helping, §5.4).
//
// Buggy variants used by the tests and the bug-finding benchmarks live
// in bugs.go; they skip the ghost annotations (they are "unverified")
// and are caught by the black-box refinement checker instead.
package replicateddisk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// State is the specification state of Figure 3: one logical disk, a
// mapping from addresses to block values.
type State struct {
	Blocks []uint64
}

func (s State) clone() State {
	out := State{Blocks: make([]uint64, len(s.Blocks))}
	copy(out.Blocks, s.Blocks)
	return out
}

// OpRead is rd_read(a).
type OpRead struct{ A uint64 }

func (o OpRead) String() string { return fmt.Sprintf("rd_read(%d)", o.A) }

// OpWrite is rd_write(a, v).
type OpWrite struct{ A, V uint64 }

func (o OpWrite) String() string { return fmt.Sprintf("rd_write(%d, %d)", o.A, o.V) }

// Spec builds the Figure 3 transition system for a disk of the given
// size. Out-of-bounds operations are undefined behaviour; the crash
// transition is the identity (no data may be lost).
func Spec(size uint64) spec.Interface {
	return &spec.TSL[State]{
		SpecName: "replicated-disk",
		Initial:  State{Blocks: make([]uint64, size)},
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpRead:
				return tsl.If(func(s State) bool { return o.A < uint64(len(s.Blocks)) },
					tsl.Gets(func(s State) spec.Ret { return s.Blocks[o.A] }),
					tsl.Undefined[State, spec.Ret]())
			case OpWrite:
				return tsl.If(func(s State) bool { return o.A < uint64(len(s.Blocks)) },
					tsl.Then(
						tsl.Modify(func(s State) State {
							n := s.clone()
							n.Blocks[o.A] = o.V
							return n
						}),
						tsl.Ret[State, spec.Ret](nil)),
					tsl.Undefined[State, spec.Ret]())
			default:
				panic(fmt.Sprintf("replicateddisk: unknown op %T", op))
			}
		},
		// crash: transition State unit := ret tt — nothing is lost.
		CrashTransition: nil,
		KeyOf:           func(s State) string { return fmt.Sprintf("%v", s.Blocks) },
	}
}

// RD is the replicated-disk library state for one era: per-address
// locks (volatile) plus the ghost capabilities for both disks' blocks.
// After a crash, Recover builds a fresh RD from the old one's masters.
type RD struct {
	size   uint64
	d1, d2 *disk.Disk
	locks  []*machine.Lock

	// ghost state (nil g means an unverified variant)
	g        *core.Ctx
	masters1 []*core.Master
	leases1  []*core.Lease
	masters2 []*core.Master
	leases2  []*core.Lease
}

// New boots the library on two fresh disks: it allocates the per-address
// locks and, when g is non-nil, the master/lease pairs for every block
// of both disks, depositing all masters in the crash invariant (the
// MsgsInv-style leasing strategy of §8.3 applied to blocks).
func New(t *machine.T, g *core.Ctx, d1, d2 *disk.Disk, size uint64) *RD {
	rd := &RD{size: size, d1: d1, d2: d2, g: g}
	rd.locks = make([]*machine.Lock, size)
	for a := uint64(0); a < size; a++ {
		rd.locks[a] = machine.NewLock(t, fmt.Sprintf("rd[%d]", a))
	}
	if g != nil {
		rd.masters1 = make([]*core.Master, size)
		rd.leases1 = make([]*core.Lease, size)
		rd.masters2 = make([]*core.Master, size)
		rd.leases2 = make([]*core.Lease, size)
		for a := uint64(0); a < size; a++ {
			rd.masters1[a], rd.leases1[a] = g.NewDurable(t, fmt.Sprintf("d1[%d]", a), d1.Peek(a))
			rd.masters2[a], rd.leases2[a] = g.NewDurable(t, fmt.Sprintf("d2[%d]", a), d2.Peek(a))
			g.DepositMaster(t, rd.masters1[a])
			g.DepositMaster(t, rd.masters2[a])
		}
	}
	return rd
}

// Read is rd_read (Figure 4): under the per-address lock, read disk 1
// and fall back to disk 2 on failure. The ghost simulation step (the
// linearization point) happens inside the critical section, and the
// value read from a healthy disk is checked against the lease's
// asserted value — the executable meaning of d₁[a] ↦ v.
func (rd *RD) Read(t *machine.T, j *core.JTok, a uint64) uint64 {
	rd.locks[a].Acquire(t)
	v, ok := rd.d1.Read(t, a)
	if !ok {
		v, _ = rd.d2.Read(t, a)
		if rd.g != nil {
			if want := rd.leases2[a].Value(t).(uint64); want != v {
				t.Failf("capability mismatch: d2[%d] holds %d but lease asserts %d", a, v, want)
			}
		}
	} else if rd.g != nil {
		if want := rd.leases1[a].Value(t).(uint64); want != v {
			t.Failf("capability mismatch: d1[%d] holds %d but lease asserts %d", a, v, want)
		}
	}
	if rd.g != nil && j != nil {
		rd.g.StepSim(t, j, v)
	}
	rd.locks[a].Release(t)
	return v
}

// Write is rd_write (Figure 4): under the per-address lock, write disk 1
// then disk 2. Before touching disk 1 the operation deposits its
// j ⤇ op token in the crash invariant; once both disks hold the new
// value it withdraws the token and simulates its own spec step. A crash
// in between leaves the token for recovery helping.
func (rd *RD) Write(t *machine.T, j *core.JTok, a, v uint64) {
	rd.locks[a].Acquire(t)
	if rd.g != nil && j != nil {
		rd.g.DepositHelping(t, j)
	}
	rd.d1.Write(t, a, v)
	if rd.g != nil {
		rd.g.Update(t, rd.masters1[a], rd.leases1[a], v, nil)
	}
	rd.d2.Write(t, a, v)
	if rd.g != nil {
		rd.g.Update(t, rd.masters2[a], rd.leases2[a], v, nil)
	}
	if rd.g != nil && j != nil {
		rd.g.WithdrawHelping(t, j)
		rd.g.StepSim(t, j, nil)
	}
	rd.locks[a].Release(t)
}

// Recover is rd_recover (Figure 5): copy every readable block of disk 1
// onto disk 2. In ghost terms it resynthesizes the master/lease pairs at
// the new memory version, uses recovery helping to justify completing
// any write that crashed between its two disk writes, and finally
// discharges the spec-level crash step. It returns the rebooted library.
func Recover(t *machine.T, old *RD) *RD {
	rd := &RD{size: old.size, d1: old.d1, d2: old.d2, g: old.g}
	rd.locks = make([]*machine.Lock, old.size)
	for a := uint64(0); a < old.size; a++ {
		rd.locks[a] = machine.NewLock(t, fmt.Sprintf("rd[%d]", a))
	}
	g := old.g
	if g != nil {
		rd.masters1 = make([]*core.Master, old.size)
		rd.leases1 = make([]*core.Lease, old.size)
		rd.masters2 = make([]*core.Master, old.size)
		rd.leases2 = make([]*core.Lease, old.size)
	}

	for a := uint64(0); a < old.size; a++ {
		var m1 *core.Master
		var m2 *core.Master
		if g != nil {
			m1, rd.leases1[a] = old.masters1[a].Resynthesize(t)
			m2, rd.leases2[a] = old.masters2[a].Resynthesize(t)
			rd.masters1[a], rd.masters2[a] = m1, m2
			// Keep the masters in the crash invariant for crashes during
			// recovery (the idempotence condition of §5.5).
			g.DepositMaster(t, m1)
			g.DepositMaster(t, m2)
		}
		v, ok := old.d1.Read(t, a)
		if !ok {
			continue
		}
		old.d2.Write(t, a, v)
		// The ghost accounting below happens in the same atomic turn as
		// the d2 write's effect, so no crash can separate the real copy
		// from its justification.
		if g != nil {
			v1 := m1.Value(t).(uint64)
			v2 := m2.Value(t).(uint64)
			if v != v1 {
				t.Failf("capability mismatch: recovery read d1[%d]=%d but master asserts %d", a, v, v1)
			}
			if v1 != v2 {
				// The disks differ: some write crashed between its two
				// disk writes, so its token must be deposited. Recovery
				// helps it (completes the operation on the dead thread's
				// behalf), which is what justifies the copy as a spec
				// transition (§5.4).
				helped := false
				for _, tok := range g.HelpingTokens() {
					if w, isW := tok.Op().(OpWrite); isW && w.A == a && w.V == v1 {
						g.Help(t, tok)
						helped = true
						break
					}
				}
				if !helped {
					t.Failf("recovery found d1[%d]=%d ≠ d2[%d]=%d with no helping token", a, v1, a, v2)
				}
			}
			g.Update(t, m2, rd.leases2[a], v, nil)
		}
	}
	if g != nil && g.CrashPending() {
		g.CrashSim(t)
	}
	return rd
}
