package replicateddisk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World is the durable-plus-ghost state a scenario carries across eras.
type World struct {
	G      *core.Ctx
	D1, D2 *disk.Disk
	RD     *RD
	Size   uint64
}

// ScenarioOptions selects the workload shape and fault model.
type ScenarioOptions struct {
	// Size is the disk size in blocks.
	Size uint64
	// Writers spawns one writer thread per entry, writing Writers[i].V to
	// Writers[i].A.
	Writers []OpWrite
	// Readers spawns one reader thread per address listed (concurrent
	// with the writers).
	Readers []uint64
	// D1MayFail lets the chooser fail disk 1 at any read.
	D1MayFail bool
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostReads reads back these addresses after recovery completes.
	PostReads []uint64
}

// Verified builds the checkable scenario for the ghost-annotated,
// correct implementation.
func Verified(name string, o ScenarioOptions) *explore.Scenario {
	return build(name, o, variantVerified)
}

// BugNoRecovery builds the §3.1 missing-recovery variant.
func BugNoRecovery(name string, o ScenarioOptions) *explore.Scenario {
	return build(name, o, variantNoRecovery)
}

// BugZeroingRecovery builds the §1 zeroing-recovery variant.
func BugZeroingRecovery(name string, o ScenarioOptions) *explore.Scenario {
	return build(name, o, variantZeroing)
}

// BugNoLock builds the lock-free-writes variant.
func BugNoLock(name string, o ScenarioOptions) *explore.Scenario {
	return build(name, o, variantNoLock)
}

// BugD1Only builds the writes-skip-disk-2 variant.
func BugD1Only(name string, o ScenarioOptions) *explore.Scenario {
	return build(name, o, variantD1Only)
}

type variant int

const (
	variantVerified variant = iota
	variantNoRecovery
	variantZeroing
	variantNoLock
	variantD1Only
)

func build(name string, o ScenarioOptions, v variant) *explore.Scenario {
	ghost := v == variantVerified
	sp := Spec(o.Size)

	doWrite := func(t *machine.T, w *World, h *explore.Harness, op OpWrite) {
		h.Op(op, func() spec.Ret {
			switch v {
			case variantNoLock:
				w.RD.WriteNoLock(t, op.A, op.V)
			case variantD1Only:
				w.RD.WriteD1Only(t, op.A, op.V)
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				w.RD.Write(t, j, op.A, op.V)
				if ghost {
					w.G.FinishOp(t, j, nil)
				}
			}
			return nil
		})
	}

	doRead := func(t *machine.T, w *World, h *explore.Harness, a uint64) {
		op := OpRead{A: a}
		h.Op(op, func() spec.Ret {
			if ghost {
				j := w.G.NewJTok(op)
				got := w.RD.Read(t, j, a)
				w.G.FinishOp(t, j, got)
				return got
			}
			return w.RD.Read(t, nil, a)
		})
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  o.MaxCrashes,
		Setup: func(m *machine.Machine) any {
			w := &World{Size: o.Size}
			w.D1 = disk.New(m, "d1", int(o.Size), o.D1MayFail)
			w.D2 = disk.New(m, "d2", int(o.Size), false)
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.RD = New(t, w.G, w.D1, w.D2, o.Size)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, wr := range o.Writers {
				op := wr
				t.Go(func(c *machine.T) { doWrite(c, w, h, op) })
			}
			for _, a := range o.Readers {
				addr := a
				t.Go(func(c *machine.T) { doRead(c, w, h, addr) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			switch v {
			case variantNoRecovery:
				w.RD = Reboot(t, w.RD)
			case variantZeroing:
				w.RD = RecoverByZeroing(t, w.RD)
			default:
				w.RD = Recover(t, w.RD)
			}
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, a := range o.PostReads {
				doRead(t, w, h, a)
			}
		},
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed after recovery")
			}
			src := w.G.Source().(State)
			for a := uint64(0); a < o.Size; a++ {
				if !w.D1.Failed() && w.D1.Peek(a) != src.Blocks[a] {
					return fmt.Errorf("AbsR: d1[%d]=%d but source says %d", a, w.D1.Peek(a), src.Blocks[a])
				}
				if w.D2.Peek(a) != src.Blocks[a] {
					return fmt.Errorf("AbsR: d2[%d]=%d but source says %d", a, w.D2.Peek(a), src.Blocks[a])
				}
			}
			return nil
		}
	}
	// All crash-surviving state lives in fingerprintable devices (the
	// disks and the ghost Ctx), so the scenario opts into crash-boundary
	// dedup with an identity hook (DESIGN.md §5).
	s.Fingerprint = func(_ any, b []byte) []byte { return b }
	return s
}
