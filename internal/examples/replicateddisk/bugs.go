package replicateddisk

import (
	"fmt"

	"repro/internal/machine"
)

// This file contains deliberately buggy variants of the replicated-disk
// library. They carry no ghost annotations (they are "unverified"); the
// black-box refinement checker in internal/explore finds counterexample
// executions for each of them, demonstrating that the checker catches
// the classes of mistakes the paper's proofs rule out (§1, §3.1, §9.5).

// Reboot rebuilds the volatile state (per-address locks) after a crash
// without repairing the disks — the missing-recovery variant from §3.1.
// A crash between the two disk writes leaves the disks out of sync, and
// a later disk-1 failure exposes the stale value on disk 2.
func Reboot(t *machine.T, old *RD) *RD {
	rd := &RD{size: old.size, d1: old.d1, d2: old.d2}
	rd.locks = make([]*machine.Lock, old.size)
	for a := uint64(0); a < old.size; a++ {
		rd.locks[a] = machine.NewLock(t, fmt.Sprintf("rd[%d]", a))
	}
	return rd
}

// RecoverByZeroing is the wrong recovery procedure called out in §1: it
// makes the disks consistent by zeroing both, which reverts completed
// writes and violates durability.
func RecoverByZeroing(t *machine.T, old *RD) *RD {
	rd := Reboot(t, old)
	for a := uint64(0); a < old.size; a++ {
		old.d1.Write(t, a, 0)
		old.d2.Write(t, a, 0)
	}
	return rd
}

// WriteNoLock writes both disks without acquiring the per-address lock.
// Two concurrent writers can interleave so that disk 1 and disk 2
// disagree on the final value; a disk-1 failure then exposes
// non-linearizable reads.
func (rd *RD) WriteNoLock(t *machine.T, a, v uint64) {
	rd.d1.Write(t, a, v)
	rd.d2.Write(t, a, v)
}

// WriteD1Only "replicates" to disk 1 only. Reads served by disk 1 look
// fine until it fails, after which disk 2 returns stale data.
func (rd *RD) WriteD1Only(t *machine.T, a, v uint64) {
	rd.locks[a].Acquire(t)
	rd.d1.Write(t, a, v)
	rd.locks[a].Release(t)
}

// ReadNoLock reads without the lock. Because disk reads are atomic and
// full-block, this is benign for reads of a healthy disk 1 — but
// combined with WriteNoLock it widens the windows the checker explores.
func (rd *RD) ReadNoLock(t *machine.T, a uint64) uint64 {
	v, ok := rd.d1.Read(t, a)
	if !ok {
		v, _ = rd.d2.Read(t, a)
	}
	return v
}
