// Package shadowcopy implements the shadow-copy crash-safety pattern of
// §9.1 (Table 3): an atomic update of a pair of disk blocks performed by
// first writing the new pair into an inactive region and then atomically
// installing it by flipping a pointer block. A crash before the install
// leaves the old pair visible; a crash after leaves the new pair
// visible; no intermediate state is ever observable, so no repair work
// is needed at recovery (recovery merely re-establishes the ghost
// capabilities). Mailboat uses this same pattern for message files
// (spool + atomic link, §8.2).
//
// Disk layout (single disk, no failures):
//
//	block 0: pointer (0 selects region A, 1 selects region B)
//	blocks 1,2: region A
//	blocks 3,4: region B
package shadowcopy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// DiskSize is the number of blocks the pattern uses.
const DiskSize = 5

// State is the spec state: the logical pair.
type State struct {
	V1, V2 uint64
}

// OpRead reads the pair atomically.
type OpRead struct{}

func (OpRead) String() string { return "read_pair()" }

// OpWrite sets the pair atomically.
type OpWrite struct{ V1, V2 uint64 }

func (o OpWrite) String() string { return fmt.Sprintf("write_pair(%d, %d)", o.V1, o.V2) }

// Pair is OpRead's return value.
type Pair struct{ V1, V2 uint64 }

// Spec is the atomic-pair specification; its crash transition is the
// identity (a completed write is never lost).
func Spec() spec.Interface {
	return &spec.TSL[State]{
		SpecName: "shadow-copy-pair",
		Initial:  State{},
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpRead:
				return tsl.Gets(func(s State) spec.Ret { return Pair{V1: s.V1, V2: s.V2} })
			case OpWrite:
				return tsl.Then(
					tsl.Modify(func(State) State { return State{V1: o.V1, V2: o.V2} }),
					tsl.Ret[State, spec.Ret](nil))
			default:
				panic(fmt.Sprintf("shadowcopy: unknown op %T", op))
			}
		},
	}
}

// SC is the shadow-copy object for one era.
type SC struct {
	d    *disk.Disk
	lock *machine.Lock

	g       *core.Ctx
	masters [DiskSize]*core.Master
	leases  [DiskSize]*core.Lease
}

// New boots the object on a fresh disk (pointer 0, both regions zero).
func New(t *machine.T, g *core.Ctx, d *disk.Disk) *SC {
	sc := &SC{d: d, g: g}
	sc.lock = machine.NewLock(t, "sc")
	if g != nil {
		for a := 0; a < DiskSize; a++ {
			sc.masters[a], sc.leases[a] = g.NewDurable(t, fmt.Sprintf("sc[%d]", a), d.Peek(uint64(a)))
			g.DepositMaster(t, sc.masters[a])
		}
	}
	return sc
}

func regionBase(ptr uint64) uint64 { return 1 + 2*ptr }

// ReadPair returns the current pair under the object lock. The
// linearization point is the pointer read; the ghost check compares the
// blocks read against the lease-asserted values.
func (sc *SC) ReadPair(t *machine.T, j *core.JTok) Pair {
	sc.lock.Acquire(t)
	ptr, _ := sc.d.Read(t, 0)
	base := regionBase(ptr)
	v1, _ := sc.d.Read(t, base)
	v2, _ := sc.d.Read(t, base+1)
	if sc.g != nil {
		if w := sc.leases[base].Value(t).(uint64); w != v1 {
			t.Failf("capability mismatch: sc[%d]=%d, lease asserts %d", base, v1, w)
		}
		if w := sc.leases[base+1].Value(t).(uint64); w != v2 {
			t.Failf("capability mismatch: sc[%d]=%d, lease asserts %d", base+1, v2, w)
		}
		if j != nil {
			sc.g.StepSim(t, j, Pair{V1: v1, V2: v2})
		}
	}
	sc.lock.Release(t)
	return Pair{V1: v1, V2: v2}
}

// WritePair writes the pair into the inactive region and installs it by
// flipping the pointer. The pointer write is the linearization point;
// the spec step is simulated in the same atomic turn as its effect, so
// no recovery helping is needed for this pattern — a crash before the
// install simply drops the operation.
func (sc *SC) WritePair(t *machine.T, j *core.JTok, v1, v2 uint64) {
	sc.lock.Acquire(t)
	ptr, _ := sc.d.Read(t, 0)
	newPtr := 1 - ptr
	base := regionBase(newPtr)

	sc.d.Write(t, base, v1)
	if sc.g != nil {
		sc.g.Update(t, sc.masters[base], sc.leases[base], v1, nil)
	}
	sc.d.Write(t, base+1, v2)
	if sc.g != nil {
		sc.g.Update(t, sc.masters[base+1], sc.leases[base+1], v2, nil)
	}

	sc.d.Write(t, 0, newPtr) // atomic install
	if sc.g != nil {
		sc.g.Update(t, sc.masters[0], sc.leases[0], newPtr, nil)
		if j != nil {
			sc.g.StepSim(t, j, nil)
		}
	}
	sc.lock.Release(t)
}

// Recover reboots the object: the shadow region needs no repair (a crash
// either installed the write or left it invisible), so recovery only
// resynthesizes the capabilities, discharges the spec crash step, and
// rebuilds the lock.
func Recover(t *machine.T, old *SC) *SC {
	sc := &SC{d: old.d, g: old.g}
	sc.lock = machine.NewLock(t, "sc")
	if old.g != nil {
		for a := 0; a < DiskSize; a++ {
			sc.masters[a], sc.leases[a] = old.masters[a].Resynthesize(t)
			old.g.DepositMaster(t, sc.masters[a])
		}
		if old.g.CrashPending() {
			old.g.CrashSim(t)
		}
	}
	return sc
}

// WriteInPlace is the buggy variant: it updates the active region
// directly. A crash between the two block writes leaves a torn pair
// visible after recovery — the exact failure shadow copies exist to
// prevent. Unverified (no ghost annotations).
func (sc *SC) WriteInPlace(t *machine.T, v1, v2 uint64) {
	sc.lock.Acquire(t)
	ptr, _ := sc.d.Read(t, 0)
	base := regionBase(ptr)
	sc.d.Write(t, base, v1)
	sc.d.Write(t, base+1, v2)
	sc.lock.Release(t)
}

// WriteInstallFirst is the buggy variant that flips the pointer before
// copying the data: readers (and crashes) observe the stale shadow
// region. Unverified.
func (sc *SC) WriteInstallFirst(t *machine.T, v1, v2 uint64) {
	sc.lock.Acquire(t)
	ptr, _ := sc.d.Read(t, 0)
	newPtr := 1 - ptr
	base := regionBase(newPtr)
	sc.d.Write(t, 0, newPtr)
	sc.d.Write(t, base, v1)
	sc.d.Write(t, base+1, v2)
	sc.lock.Release(t)
}
