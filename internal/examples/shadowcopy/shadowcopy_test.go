package shadowcopy

import (
	"testing"

	"repro/internal/explore"
)

func TestSpecAtomicPair(t *testing.T) {
	sp := Spec()
	st := sp.Init()
	next, ub := sp.Step(st, OpWrite{V1: 1, V2: 2}, nil)
	if ub || len(next) != 1 {
		t.Fatalf("write: %v %v", next, ub)
	}
	st = next[0]
	if next, _ = sp.Step(st, OpRead{}, Pair{V1: 1, V2: 2}); len(next) != 1 {
		t.Fatal("read of written pair rejected")
	}
	// A torn pair is never allowed.
	if next, _ = sp.Step(st, OpRead{}, Pair{V1: 1, V2: 0}); len(next) != 0 {
		t.Fatal("torn pair accepted by spec")
	}
}

func TestVerifiedSequential(t *testing.T) {
	s := Scenario("sc-seq", VariantVerified, ScenarioOptions{
		Writers:   []OpWrite{{V1: 1, V2: 2}},
		PostReads: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedCrashEverywhereExhaustive(t *testing.T) {
	s := Scenario("sc-crash", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedConcurrentWritersAndReader(t *testing.T) {
	s := Scenario("sc-conc", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}, {V1: 3, V2: 4}},
		Readers:    1,
		MaxCrashes: 1,
		PostReads:  1,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedDoubleCrash(t *testing.T) {
	// Crash during recovery exercises the idempotence condition (§5.5).
	s := Scenario("sc-2crash", VariantVerified, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 2,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 300000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugInPlaceTornWriteFound(t *testing.T) {
	s := Scenario("sc-bug-inplace", VariantInPlace, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("in-place torn write not found")
	}
}

func TestBugInstallFirstFound(t *testing.T) {
	s := Scenario("sc-bug-installfirst", VariantInstallFirst, ScenarioOptions{
		Writers:    []OpWrite{{V1: 1, V2: 2}},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("install-before-copy bug not found")
	}
}

func TestBugInstallFirstVisibleToConcurrentReaderWithoutCrash(t *testing.T) {
	// Even without a crash the readers can observe the stale shadow
	// region... actually the object lock prevents that; the bug needs a
	// crash. Verify the crash-free space really is clean, then that the
	// crashing space is not.
	clean := Scenario("sc-bug-installfirst-nocrash", VariantInstallFirst, ScenarioOptions{
		Writers:   []OpWrite{{V1: 1, V2: 2}},
		Readers:   1,
		PostReads: 1,
	})
	rep := explore.Run(clean, explore.Options{MaxExecutions: 100000})
	if !rep.OK() {
		t.Fatalf("lock should hide the stale region without crashes:\n%s", rep.Counterexample.Format())
	}
}
