package shadowcopy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World carries the durable and ghost state across eras.
type World struct {
	G  *core.Ctx
	D  *disk.Disk
	SC *SC
}

// Variant selects the implementation under check.
type Variant int

const (
	// VariantVerified is the ghost-annotated shadow-copy implementation.
	VariantVerified Variant = iota
	// VariantInPlace updates the active region directly (buggy).
	VariantInPlace
	// VariantInstallFirst flips the pointer before copying (buggy).
	VariantInstallFirst
)

// ScenarioOptions shapes the workload.
type ScenarioOptions struct {
	// Writers spawns one writer per pair.
	Writers []OpWrite
	// Readers spawns this many concurrent readers.
	Readers int
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostReads reads the pair back this many times at the end.
	PostReads int
}

// Scenario builds the checkable scenario for the chosen variant.
func Scenario(name string, v Variant, o ScenarioOptions) *explore.Scenario {
	ghost := v == VariantVerified
	sp := Spec()

	doWrite := func(t *machine.T, w *World, h *explore.Harness, op OpWrite) {
		h.Op(op, func() spec.Ret {
			switch v {
			case VariantInPlace:
				w.SC.WriteInPlace(t, op.V1, op.V2)
			case VariantInstallFirst:
				w.SC.WriteInstallFirst(t, op.V1, op.V2)
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				w.SC.WritePair(t, j, op.V1, op.V2)
				if ghost {
					w.G.FinishOp(t, j, nil)
				}
			}
			return nil
		})
	}
	doRead := func(t *machine.T, w *World, h *explore.Harness) {
		op := OpRead{}
		h.Op(op, func() spec.Ret {
			if ghost {
				j := w.G.NewJTok(op)
				got := w.SC.ReadPair(t, j)
				w.G.FinishOp(t, j, got)
				return got
			}
			return w.SC.ReadPair(t, nil)
		})
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  o.MaxCrashes,
		Setup: func(m *machine.Machine) any {
			w := &World{}
			w.D = disk.New(m, "d", DiskSize, false)
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.SC = New(t, w.G, w.D)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, wr := range o.Writers {
				op := wr
				t.Go(func(c *machine.T) { doWrite(c, w, h, op) })
			}
			for i := 0; i < o.Readers; i++ {
				t.Go(func(c *machine.T) { doRead(c, w, h) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.SC = Recover(t, w.SC)
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for i := 0; i < o.PostReads; i++ {
				doRead(t, w, h)
			}
		},
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed")
			}
			src := w.G.Source().(State)
			ptr := w.D.Peek(0)
			if ptr > 1 {
				return fmt.Errorf("pointer block corrupt: %d", ptr)
			}
			base := regionBase(ptr)
			if w.D.Peek(base) != src.V1 || w.D.Peek(base+1) != src.V2 {
				return fmt.Errorf("AbsR: active region (%d,%d) but source (%d,%d)",
					w.D.Peek(base), w.D.Peek(base+1), src.V1, src.V2)
			}
			return nil
		}
	}
	// All crash-surviving state lives in fingerprintable devices (the
	// disks and the ghost Ctx), so the scenario opts into crash-boundary
	// dedup with an identity hook (DESIGN.md §5).
	s.Fingerprint = func(_ any, b []byte) []byte { return b }
	return s
}
