package groupcommit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World carries the durable and ghost state across eras.
type World struct {
	G  *core.Ctx
	D  *disk.Disk
	GC *GC
}

// Variant selects the implementation under check.
type Variant int

const (
	// VariantVerified is the ghost-annotated implementation.
	VariantVerified Variant = iota
	// VariantFlushNoLog flushes without the log (buggy).
	VariantFlushNoLog
	// VariantRacyRead reads the buffer without the lock (buggy: a data
	// race, i.e. undefined behaviour under §6.1).
	VariantRacyRead
)

// Step is one workload action: a write, a read, or a flush, run on its
// own thread.
type Step struct {
	Write *OpWrite
	Read  bool
	Flush bool
}

// ScenarioOptions shapes the workload.
type ScenarioOptions struct {
	// Steps spawns one thread per entry.
	Steps []Step
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostReads reads the pair back this many times at the end.
	PostReads int
}

// Scenario builds the checkable scenario for the chosen variant.
func Scenario(name string, v Variant, o ScenarioOptions) *explore.Scenario {
	ghost := v == VariantVerified
	sp := Spec()

	runStep := func(t *machine.T, w *World, h *explore.Harness, st Step) {
		switch {
		case st.Write != nil:
			op := *st.Write
			h.Op(op, func() spec.Ret {
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				w.GC.Write(t, j, op.V1, op.V2)
				if ghost {
					w.G.FinishOp(t, j, nil)
				}
				return nil
			})
		case st.Read:
			op := OpRead{}
			h.Op(op, func() spec.Ret {
				if v == VariantRacyRead {
					return w.GC.ReadNoLock(t)
				}
				if ghost {
					j := w.G.NewJTok(op)
					got := w.GC.Read(t, j)
					w.G.FinishOp(t, j, got)
					return got
				}
				return w.GC.Read(t, nil)
			})
		case st.Flush:
			op := OpFlush{}
			h.Op(op, func() spec.Ret {
				if v == VariantFlushNoLog {
					w.GC.FlushNoLog(t)
					return nil
				}
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				w.GC.Flush(t, j)
				if ghost {
					w.G.FinishOp(t, j, nil)
				}
				return nil
			})
		}
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  o.MaxCrashes,
		Setup: func(m *machine.Machine) any {
			w := &World{}
			w.D = disk.New(m, "d", DiskSize, false)
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.GC = New(t, w.G, w.D)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, st := range o.Steps {
				st := st
				t.Go(func(c *machine.T) { runStep(c, w, h, st) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.GC = Recover(t, w.GC)
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for i := 0; i < o.PostReads; i++ {
				op := OpRead{}
				h.Op(op, func() spec.Ret {
					if ghost {
						j := w.G.NewJTok(op)
						got := w.GC.Read(t, j)
						w.G.FinishOp(t, j, got)
						return got
					}
					return w.GC.Read(t, nil)
				})
			}
		},
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed")
			}
			src := w.G.Source().(State)
			if flag := w.D.Peek(addrFlag); flag != 0 {
				return fmt.Errorf("commit flag still set (%d) at an era boundary", flag)
			}
			if w.D.Peek(addrData1) != src.DurV1 || w.D.Peek(addrData2) != src.DurV2 {
				return fmt.Errorf("AbsR: durable data (%d,%d) but source durable (%d,%d)",
					w.D.Peek(addrData1), w.D.Peek(addrData2), src.DurV1, src.DurV2)
			}
			return nil
		}
	}
	// All crash-surviving state lives in fingerprintable devices (the
	// disks and the ghost Ctx), so the scenario opts into crash-boundary
	// dedup with an identity hook (DESIGN.md §5).
	s.Fingerprint = func(_ any, b []byte) []byte { return b }
	return s
}
