// Package groupcommit implements the group-commit pattern of §9.1
// (Table 3): transactions update an in-memory buffered pair and return
// immediately; an explicit flush combines everything buffered since the
// last flush into a single write-ahead-logged commit, amortizing the
// cost of committing. The specification makes the loss window precise:
// buffered (unflushed) writes may be lost at a crash, flushed ones may
// not.
//
// The spec state therefore has two parts — a durable pair and a volatile
// pair. Writes and reads touch the volatile pair, flush copies volatile
// to durable, and the crash transition resets volatile to durable.
//
// Disk layout is the same five-block WAL as internal/examples/wal; the
// buffered pair lives in versioned heap cells, which the machine erases
// at a crash (§5.2).
package groupcommit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// DiskSize is the number of blocks the pattern uses.
const DiskSize = 5

const (
	addrFlag  = 0
	addrLog1  = 1
	addrLog2  = 2
	addrData1 = 3
	addrData2 = 4
)

// State is the spec state: durable and volatile pairs.
type State struct {
	DurV1, DurV2 uint64
	VolV1, VolV2 uint64
}

// OpWrite buffers a new pair (volatile until flushed).
type OpWrite struct{ V1, V2 uint64 }

func (o OpWrite) String() string { return fmt.Sprintf("buf_write(%d, %d)", o.V1, o.V2) }

// OpRead reads the buffered pair.
type OpRead struct{}

func (OpRead) String() string { return "buf_read()" }

// OpFlush makes the buffered pair durable.
type OpFlush struct{}

func (OpFlush) String() string { return "flush()" }

// Pair is OpRead's return value.
type Pair struct{ V1, V2 uint64 }

// Spec is the group-commit specification. Crash resets the volatile
// pair to the durable one — this is where the spec "specifies when
// transactions can be lost" (§9.1).
func Spec() spec.Interface {
	return &spec.TSL[State]{
		SpecName: "group-commit-pair",
		Initial:  State{},
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpWrite:
				return tsl.Then(
					tsl.Modify(func(s State) State {
						s.VolV1, s.VolV2 = o.V1, o.V2
						return s
					}),
					tsl.Ret[State, spec.Ret](nil))
			case OpRead:
				return tsl.Gets(func(s State) spec.Ret { return Pair{V1: s.VolV1, V2: s.VolV2} })
			case OpFlush:
				return tsl.Then(
					tsl.Modify(func(s State) State {
						s.DurV1, s.DurV2 = s.VolV1, s.VolV2
						return s
					}),
					tsl.Ret[State, spec.Ret](nil))
			default:
				panic(fmt.Sprintf("groupcommit: unknown op %T", op))
			}
		},
		CrashTransition: func(s State) State {
			s.VolV1, s.VolV2 = s.DurV1, s.DurV2
			return s
		},
	}
}

// GC is the group-commit object for one era.
type GC struct {
	d    *disk.Disk
	lock *machine.Lock
	buf1 *machine.Ref[uint64]
	buf2 *machine.Ref[uint64]

	g       *core.Ctx
	masters [DiskSize]*core.Master
	leases  [DiskSize]*core.Lease
}

// New boots the object on a fresh disk; the buffer starts equal to the
// durable pair.
func New(t *machine.T, g *core.Ctx, d *disk.Disk) *GC {
	gc := &GC{d: d, g: g}
	gc.lock = machine.NewLock(t, "gc")
	gc.buf1 = machine.NewRef(t, "gc.buf1", d.Peek(addrData1))
	gc.buf2 = machine.NewRef(t, "gc.buf2", d.Peek(addrData2))
	if g != nil {
		for a := 0; a < DiskSize; a++ {
			gc.masters[a], gc.leases[a] = g.NewDurable(t, fmt.Sprintf("gc[%d]", a), d.Peek(uint64(a)))
			g.DepositMaster(t, gc.masters[a])
		}
	}
	return gc
}

// Write buffers the pair in memory and returns; durability waits for
// Flush. The spec step happens inside the critical section.
func (gc *GC) Write(t *machine.T, j *core.JTok, v1, v2 uint64) {
	gc.lock.Acquire(t)
	gc.buf1.Store(t, v1)
	gc.buf2.Store(t, v2)
	if gc.g != nil && j != nil {
		gc.g.StepSim(t, j, nil)
	}
	gc.lock.Release(t)
}

// Read returns the buffered pair.
func (gc *GC) Read(t *machine.T, j *core.JTok) Pair {
	gc.lock.Acquire(t)
	v1 := gc.buf1.Load(t)
	v2 := gc.buf2.Load(t)
	if gc.g != nil && j != nil {
		gc.g.StepSim(t, j, Pair{V1: v1, V2: v2})
	}
	gc.lock.Release(t)
	return Pair{V1: v1, V2: v2}
}

// Flush commits the buffered pair with one write-ahead-logged
// transaction, combining every write since the previous flush (this is
// the "group" in group commit). The crash-window reasoning is the same
// as internal/examples/wal's WritePair: the flush's j ⤇ op token is
// deposited before the commit write and either self-simulated at the
// flag clear or helped by recovery.
func (gc *GC) Flush(t *machine.T, j *core.JTok) {
	gc.lock.Acquire(t)
	v1 := gc.buf1.Load(t)
	v2 := gc.buf2.Load(t)

	gc.d.Write(t, addrLog1, v1)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrLog1], gc.leases[addrLog1], v1, nil)
	}
	gc.d.Write(t, addrLog2, v2)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrLog2], gc.leases[addrLog2], v2, nil)
		if j != nil {
			gc.g.DepositHelping(t, j)
		}
	}

	gc.d.Write(t, addrFlag, 1)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrFlag], gc.leases[addrFlag], uint64(1), nil)
	}

	gc.d.Write(t, addrData1, v1)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrData1], gc.leases[addrData1], v1, nil)
	}
	gc.d.Write(t, addrData2, v2)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrData2], gc.leases[addrData2], v2, nil)
	}

	gc.d.Write(t, addrFlag, 0)
	if gc.g != nil {
		gc.g.Update(t, gc.masters[addrFlag], gc.leases[addrFlag], uint64(0), nil)
		if j != nil {
			gc.g.WithdrawHelping(t, j)
			gc.g.StepSim(t, j, nil)
		}
	}
	gc.lock.Release(t)
}

// Recover reboots the object: finish a committed-but-unapplied flush
// (helping its token), clear the flag, rebuild the volatile buffer from
// the durable pair, and discharge the spec crash step — whose transition
// resets the spec's volatile pair to its durable pair, matching the
// buffer rebuild exactly.
func Recover(t *machine.T, old *GC) *GC {
	gc := &GC{d: old.d, g: old.g}
	gc.lock = machine.NewLock(t, "gc")
	g := old.g
	if g != nil {
		for a := 0; a < DiskSize; a++ {
			gc.masters[a], gc.leases[a] = old.masters[a].Resynthesize(t)
			g.DepositMaster(t, gc.masters[a])
		}
	}

	flag, _ := gc.d.Read(t, addrFlag)
	if flag == 1 {
		v1, _ := gc.d.Read(t, addrLog1)
		v2, _ := gc.d.Read(t, addrLog2)
		gc.d.Write(t, addrData1, v1)
		if g != nil {
			g.Update(t, gc.masters[addrData1], gc.leases[addrData1], v1, nil)
		}
		gc.d.Write(t, addrData2, v2)
		if g != nil {
			g.Update(t, gc.masters[addrData2], gc.leases[addrData2], v2, nil)
		}
		gc.d.Write(t, addrFlag, 0)
		if g != nil {
			helped := false
			for _, tok := range g.HelpingTokens() {
				if _, isFlush := tok.Op().(OpFlush); isFlush {
					g.Help(t, tok)
					helped = true
					break
				}
			}
			if !helped {
				s := g.Source().(State)
				if s.DurV1 != v1 || s.DurV2 != v2 {
					t.Failf("recovery found committed flush (%d,%d) with no helping token", v1, v2)
				}
			}
			g.Update(t, gc.masters[addrFlag], gc.leases[addrFlag], uint64(0), nil)
		}
	}
	if g != nil && g.CrashPending() {
		g.CrashSim(t)
	}

	gc.buf1 = machine.NewRef(t, "gc.buf1", gc.d.Peek(addrData1))
	gc.buf2 = machine.NewRef(t, "gc.buf2", gc.d.Peek(addrData2))
	return gc
}

// FlushNoLog is the buggy flush that writes the data blocks directly:
// a crash between the two writes makes a torn pair durable. Unverified.
func (gc *GC) FlushNoLog(t *machine.T) {
	gc.lock.Acquire(t)
	v1 := gc.buf1.Load(t)
	v2 := gc.buf2.Load(t)
	gc.d.Write(t, addrData1, v1)
	gc.d.Write(t, addrData2, v2)
	gc.lock.Release(t)
}

// ReadNoLock is the buggy read that skips the lock: it races with
// Write's two-step stores, which the machine reports as undefined
// behaviour (§6.1). Unverified.
func (gc *GC) ReadNoLock(t *machine.T) Pair {
	v1 := gc.buf1.Load(t)
	v2 := gc.buf2.Load(t)
	return Pair{V1: v1, V2: v2}
}
