package groupcommit

import (
	"strings"
	"testing"

	"repro/internal/explore"
)

func wr(v1, v2 uint64) Step { return Step{Write: &OpWrite{V1: v1, V2: v2}} }
func rd() Step              { return Step{Read: true} }
func fl() Step              { return Step{Flush: true} }

func TestSpecCrashLosesOnlyUnflushedWrites(t *testing.T) {
	sp := Spec()
	st := sp.Init()
	mustStep := func(op any, ret any) {
		t.Helper()
		next, ub := sp.Step(st, op, ret)
		if ub || len(next) == 0 {
			t.Fatalf("spec step %v rejected: ub=%v", op, ub)
		}
		st = next[0]
	}
	mustStep(OpWrite{V1: 1, V2: 2}, nil)
	mustStep(OpFlush{}, nil)
	mustStep(OpWrite{V1: 9, V2: 9}, nil)
	st = sp.Crash(st)
	s := st.(State)
	if s.VolV1 != 1 || s.VolV2 != 2 {
		t.Fatalf("crash did not reset volatile to durable: %+v", s)
	}
	if s.DurV1 != 1 || s.DurV2 != 2 {
		t.Fatalf("crash changed durable state: %+v", s)
	}
}

func TestVerifiedSequentialWriteFlushRead(t *testing.T) {
	s := Scenario("gc-seq", VariantVerified, ScenarioOptions{
		Steps:     []Step{wr(1, 2)},
		PostReads: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedWriteFlushCrashExhaustive(t *testing.T) {
	s := Scenario("gc-crash", VariantVerified, ScenarioOptions{
		Steps:      []Step{wr(1, 2), fl()},
		MaxCrashes: 1,
		PostReads:  1,
	})
	budget := 50000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedUnflushedWriteMayBeLost(t *testing.T) {
	// A write without a flush is allowed to vanish at a crash; the spec
	// permits it, so the whole space must be clean AND some crashed
	// execution must exist.
	s := Scenario("gc-lossy", VariantVerified, ScenarioOptions{
		Steps:      []Step{wr(5, 6)},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

func TestVerifiedConcurrentWritersWithFlush(t *testing.T) {
	s := Scenario("gc-conc", VariantVerified, ScenarioOptions{
		Steps:      []Step{wr(1, 2), wr(3, 4), fl()},
		MaxCrashes: 1,
		PostReads:  1,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedDoubleCrashDuringRecovery(t *testing.T) {
	s := Scenario("gc-2crash", VariantVerified, ScenarioOptions{
		Steps:      []Step{wr(1, 2), fl()},
		MaxCrashes: 2,
		PostReads:  1,
	})
	budget := 50000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugFlushNoLogFound(t *testing.T) {
	s := Scenario("gc-bug-nolog", VariantFlushNoLog, ScenarioOptions{
		Steps:      []Step{wr(1, 2), fl()},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("unlogged flush tear not found")
	}
}

func TestBugRacyReadIsUndefinedBehaviour(t *testing.T) {
	// A lock-free read races with Write's two-step store; the machine
	// must flag the data race (§6.1's race-is-UB rule).
	s := Scenario("gc-bug-racyread", VariantRacyRead, ScenarioOptions{
		Steps: []Step{wr(1, 2), rd()},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("data race not found")
	}
	if !strings.Contains(rep.Counterexample.Reason, "data race") {
		t.Fatalf("expected a data-race violation, got:\n%s", rep.Counterexample.Format())
	}
}
