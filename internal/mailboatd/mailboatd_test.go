package mailboatd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/pop3"
	"repro/internal/smtp"
)

// startStack boots the verified library plus both protocol servers on
// loopback and returns their addresses.
func startStack(t *testing.T, root string) (a *Adapter, smtpAddr, popAddr string) {
	t.Helper()
	adapter, err := New(root, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(adapter.Close)

	ss := smtp.NewServer(adapter, adapter.Users())
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ss.Serve(sl)
	t.Cleanup(func() { ss.Close() })

	ps := pop3.NewServer(adapter, adapter.Users())
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ps.Serve(pl)
	t.Cleanup(func() { ps.Close() })

	return adapter, sl.Addr().String(), pl.Addr().String()
}

type lineConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &lineConn{conn: c, r: bufio.NewReader(c)}
}

func (l *lineConn) cmd(t *testing.T, line, wantPrefix string) string {
	t.Helper()
	if line != "" {
		fmt.Fprintf(l.conn, "%s\r\n", line)
	}
	resp, err := l.r.ReadString('\n')
	if err != nil {
		t.Fatalf("after %q: %v", line, err)
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		t.Fatalf("after %q: got %q, want prefix %q", line, resp, wantPrefix)
	}
	return resp
}

func TestSMTPDeliverThenPOP3Retrieve(t *testing.T) {
	_, smtpAddr, popAddr := startStack(t, t.TempDir())

	// Deliver via SMTP.
	s := dialLine(t, smtpAddr)
	s.cmd(t, "", "220")
	s.cmd(t, "HELO test", "250")
	s.cmd(t, "MAIL FROM:<postmaster@x>", "250")
	s.cmd(t, "RCPT TO:<user2@example.com>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "Subject: greetings\r\n\r\nhello over the wire\r\n.\r\n")
	if resp, err := s.r.ReadString('\n'); err != nil || !strings.HasPrefix(resp, "250") {
		t.Fatalf("DATA response: %q %v", resp, err)
	}
	s.cmd(t, "QUIT", "221")

	// Retrieve via POP3.
	p := dialLine(t, popAddr)
	p.cmd(t, "", "+OK")
	p.cmd(t, "USER user2", "+OK")
	p.cmd(t, "PASS x", "+OK maildrop has 1")
	p.cmd(t, "RETR 1", "+OK")
	var body []string
	for {
		line, err := p.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			break
		}
		body = append(body, line)
	}
	joined := strings.Join(body, "\n")
	if !strings.Contains(joined, "hello over the wire") {
		t.Fatalf("retrieved body: %q", joined)
	}
	p.cmd(t, "DELE 1", "+OK")
	p.cmd(t, "QUIT", "+OK")

	// The mailbox is now empty.
	p2 := dialLine(t, popAddr)
	p2.cmd(t, "", "+OK")
	p2.cmd(t, "USER user2", "+OK")
	p2.cmd(t, "PASS x", "+OK maildrop has 0")
	p2.cmd(t, "QUIT", "+OK")
}

func TestRestartRecoversAndKeepsMail(t *testing.T) {
	root := t.TempDir()
	a, err := New(root, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Deliver(0, []byte("durable mail")); err != nil {
		t.Fatal(err)
	}
	a.Close() // "crash": the process goes away without cleanup

	a2, err := New(root, 2, 2) // boot runs Recover
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	msgs, err := a2.Pickup(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Contents != "durable mail" {
		t.Fatalf("after restart: %+v", msgs)
	}
	a2.Unlock(0)
}

func TestConcurrentSMTPClients(t *testing.T) {
	adapter, smtpAddr, _ := startStack(t, t.TempDir())

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			conn, err := net.Dial("tcp", smtpAddr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			step := func(send, want string) error {
				if send != "" {
					fmt.Fprintf(conn, "%s\r\n", send)
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				if !strings.HasPrefix(resp, want) {
					return fmt.Errorf("got %q want %q", resp, want)
				}
				return nil
			}
			for _, st := range []struct{ send, want string }{
				{"", "220"},
				{"MAIL FROM:<x@y>", "250"},
				{fmt.Sprintf("RCPT TO:<user%d@z>", i%4), "250"},
				{"DATA", "354"},
			} {
				if err := step(st.send, st.want); err != nil {
					errs <- err
					return
				}
			}
			fmt.Fprintf(conn, "message %d\r\n.\r\n", i)
			errs <- step("", "250")
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	total := 0
	for u := uint64(0); u < 4; u++ {
		msgs, err := adapter.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		total += len(msgs)
		adapter.Unlock(u)
	}
	if total != clients {
		t.Fatalf("delivered %d of %d messages", total, clients)
	}
}
