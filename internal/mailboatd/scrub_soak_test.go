package mailboatd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mailboat"
	"repro/internal/obs"
	"repro/internal/smtp"
)

// TestScrubSoakCorruptionMidTraffic is the integrity drill: a
// checksummed mirrored server takes concurrent SMTP traffic with the
// background scrubber running, a live replica's bytes are silently
// flipped mid-stream (the silent-corruption fault — a decaying disk,
// not a died one), and a heal-scrub runs while deliveries keep
// committing. The stack is then killed mid-traffic and rebooted; boot
// recovery resilvers and scrubs. The test asserts the §8 durability
// contract extended with integrity: every ACKNOWLEDGED (250) message is
// in a mailbox afterwards, nothing on disk is bytes nobody sent, the
// corruption was detected (not served), and the replica roots are
// byte-identical again — the envelope encoding is deterministic, so
// healed replicas converge to the same raw bytes.
func TestScrubSoakCorruptionMidTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	root0, root1 := t.TempDir(), t.TempDir()
	const users = 3
	const clients = 6
	const msgsPerClient = 40

	a, err := NewWithOptions(root0, Options{
		Users:      users,
		Seed:       1,
		MirrorRoot: root1,
		Checksum:   true,
		ScrubEvery: 10 * time.Millisecond,
		Metrics:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := smtp.NewServer(a, users)
	srv.ReadTimeout = 5 * time.Second
	srv.WriteTimeout = 5 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// allowed is every body any client will ever send: after the soak,
	// any message on disk outside this set is fabricated bytes.
	allowed := map[string]bool{}
	for c := 0; c < clients; c++ {
		for m := 0; m < msgsPerClient; m++ {
			allowed[fmt.Sprintf("scrub-client-%d-msg-%d", c, m)+"\n"] = true
		}
	}

	var mu sync.Mutex
	acked := map[string]bool{}
	ackedAfterRot := 0
	var rotted bool

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(15 * time.Second))
			r := bufio.NewReader(conn)
			step := func(send, want string) bool {
				if send != "" {
					if _, err := fmt.Fprintf(conn, "%s\r\n", send); err != nil {
						return false
					}
				}
				resp, err := r.ReadString('\n')
				return err == nil && strings.HasPrefix(resp, want)
			}
			if !step("", "220") {
				return
			}
			for m := 0; m < msgsPerClient; m++ {
				body := fmt.Sprintf("scrub-client-%d-msg-%d", c, m)
				user := (c + m) % users
				if !step("MAIL FROM:<x@y>", "250") ||
					!step(fmt.Sprintf("RCPT TO:<user%d@z>", user), "250") ||
					!step("DATA", "354") {
					return
				}
				if _, err := fmt.Fprintf(conn, "%s\r\n.\r\n", body); err != nil {
					return
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return
				}
				if strings.HasPrefix(resp, "250") {
					mu.Lock()
					acked[body+"\n"] = true
					if rotted {
						ackedAfterRot++
					}
					mu.Unlock()
				}
			}
		}(c)
	}

	// Mid-traffic, flip a byte of a published message on replica 0: the
	// rot is durable and silent until something reads the file. Retry
	// briefly — the first published message may not have landed yet.
	var corrupted string
	for i := 0; i < 200 && corrupted == ""; i++ {
		time.Sleep(time.Millisecond)
		corrupted = a.CorruptReplica(0)
	}
	if corrupted == "" {
		t.Fatal("no published file to corrupt; the soak exercised nothing")
	}
	mu.Lock()
	rotted = true
	mu.Unlock()
	t.Logf("scrub soak: corrupted %s on replica 0", corrupted)

	// An explicit heal pass races the live traffic and the background
	// scrubber; between them the rot must be found. Traffic keeps
	// flowing while it runs.
	if _, ok := a.Scrub(true); !ok {
		t.Fatal("checksummed mirror refused to scrub")
	}

	// Let the healed mirror take more traffic, then kill the process.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
	a.Close()
	wg.Wait()

	if a.IntegrityDetected() == 0 {
		t.Error("corruption was never detected by any read or scrub")
	}

	// Reboot over the same roots: recovery resilvers, then heal-scrubs.
	b, err := NewWithOptions(root0, Options{
		Users:      users,
		Seed:       2,
		MirrorRoot: root1,
		Checksum:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if st := b.MirrorStatus(); st.Degraded || st.Resilvering {
		t.Fatalf("mirror unhealthy after reboot: %+v", st)
	}
	if rep, _, ok := b.LastScrub(); !ok || !rep.Clean() {
		t.Fatalf("boot scrub not clean: ran=%v report %+v", ok, rep)
	}

	// Durability + integrity: every acknowledged message is in a
	// mailbox, and nothing in any mailbox is bytes nobody sent.
	present := map[string]bool{}
	total := 0
	for u := uint64(0); u < users; u++ {
		msgs, err := b.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			present[m.Contents] = true
			if !allowed[m.Contents] {
				t.Errorf("mailbox serves bytes nobody sent: %q", m.Contents)
			}
		}
		total += len(msgs)
		b.Unlock(u)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Logf("scrub soak: %d acked (%d after corruption), %d on disk after reboot",
		len(acked), ackedAfterRot, total)
	if len(acked) == 0 {
		t.Fatal("no message was ever acknowledged; the soak exercised nothing")
	}
	if ackedAfterRot == 0 {
		t.Fatal("no message acknowledged after the corruption; the drill raced nothing")
	}
	for body := range acked {
		if !present[body] {
			t.Errorf("acknowledged message lost: %q", strings.TrimSpace(body))
		}
	}

	// Redundancy: the replica roots are byte-identical again — healed
	// envelopes are rebuilt deterministically, so even the repaired file
	// matches its peer byte for byte.
	s0, s1 := replicaSnapshot(t, root0, users), replicaSnapshot(t, root1, users)
	if len(s0) != len(s1) {
		t.Fatalf("replica file counts differ after heal: %d vs %d", len(s0), len(s1))
	}
	for name, c0 := range s0 {
		c1, ok := s1[name]
		if !ok {
			t.Errorf("file %s missing on replica 1", name)
			continue
		}
		if c0 != c1 {
			t.Errorf("file %s differs between replicas", name)
		}
	}
}

// TestChecksummedAdapterBasics covers the single-backend integrity
// surface: a checksummed adapter round-trips mail through envelopes on
// disk, scrubs clean, and — with no peer to heal from — answers
// corruption by refusing the file, never by serving mangled bytes.
func TestChecksummedAdapterBasics(t *testing.T) {
	root := t.TempDir()
	a, err := NewWithOptions(root, Options{Users: 2, Seed: 5, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Deliver(1, []byte("enveloped")); err != nil {
		t.Fatal(err)
	}
	msgs, _ := a.Pickup(1)
	a.Unlock(1)
	if len(msgs) != 1 || msgs[0].Contents != "enveloped" {
		t.Fatalf("pickup through envelopes: %+v", msgs)
	}

	rep, ok := a.Scrub(true)
	if !ok || rep.Checked == 0 || !rep.Clean() {
		t.Fatalf("clean-store scrub: ok=%v %+v", ok, rep)
	}
	if _, _, ran := a.LastScrub(); !ran {
		t.Fatal("LastScrub not recorded")
	}

	path := a.CorruptReplica(0)
	if path == "" {
		t.Fatal("CorruptReplica found nothing to corrupt")
	}
	msgs, err = a.Pickup(1)
	a.Unlock(1)
	if err != nil {
		t.Fatalf("pickup after corruption errored instead of skipping: %v", err)
	}
	for _, m := range msgs {
		if m.Contents != "enveloped" {
			t.Fatalf("pickup served mangled bytes: %q", m.Contents)
		}
	}
	if len(msgs) != 0 {
		t.Fatalf("rotten message still served: %+v", msgs)
	}
	if a.IntegrityDetected() == 0 {
		t.Error("corruption read back but never counted as detected")
	}
	rep, ok = a.Scrub(false)
	if !ok || rep.Corrupt == 0 || len(rep.Bad) == 0 {
		t.Fatalf("scrub missed the rot: ok=%v %+v", ok, rep)
	}

	// Reboot: single-backend recovery has no peer to heal from, but it
	// must come up, report the damage on a scrub, and keep serving the
	// healthy mail.
	a.Close()
	b, err := NewWithOptions(root, Options{Users: 2, Seed: 6, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if rep, _, ran := b.LastScrub(); !ran || rep.Clean() {
		t.Fatalf("boot scrub should have reported the rot: ran=%v %+v", ran, rep)
	}

	// The envelope really is on disk: the stored file is framed, not the
	// raw message bytes.
	entries, err := os.ReadDir(filepath.Join(root, mailboat.UserDir(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no stored message file")
	}
	raw, err := os.ReadFile(filepath.Join(root, mailboat.UserDir(1), entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) == "enveloped" {
		t.Fatal("stored file is raw bytes; envelope layer not in the stack")
	}
}
