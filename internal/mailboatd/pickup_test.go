package mailboatd

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gfs"
)

// TestPickupUnderReadFaults drills Pickup's always-nil error contract:
// with EVERY ReadAt faulted short (rate 1 on the read-short class and
// nothing else), pickups must still return every delivered message
// byte-exactly, because the library's chunk loop retries short reads
// from the advanced offset instead of mistaking them for end-of-file.
func TestPickupUnderReadFaults(t *testing.T) {
	var rates [gfs.NumFaultOps]uint64
	rates[gfs.FaultReadShort] = 1
	a, err := NewWithOptions(t.TempDir(), Options{
		Users: 2,
		Seed:  7,
		Fault: &FaultOptions{Seed: 7, Rates: rates},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Multi-chunk bodies force several reads per message, each faulted.
	want := map[string]bool{}
	for i := 0; i < 4; i++ {
		msg := fmt.Sprintf("msg %d: %s\n", i, strings.Repeat("x", 3*gfs.ReadChunk+i))
		if err := a.Deliver(1, []byte(msg)); err != nil {
			t.Fatalf("deliver %d: %v", i, err)
		}
		want[msg] = true
	}

	msgs, err := a.Pickup(1)
	if err != nil {
		t.Fatalf("Pickup returned %v; its contract is a nil error", err)
	}
	defer a.Unlock(1)
	if len(msgs) != len(want) {
		t.Fatalf("picked up %d messages, want %d", len(msgs), len(want))
	}
	for _, m := range msgs {
		if !want[m.Contents] {
			t.Errorf("message %s corrupted under read faults (len %d)", m.ID, len(m.Contents))
		}
	}

	// The drill really did fault reads; otherwise this test proves nothing.
	faulted := 0
	for _, e := range a.FaultLog() {
		if e.Op == gfs.FaultReadShort {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no read faults injected; drill misconfigured")
	}
}
