package mailboatd

// The disk-full soak: the real thing, not the model. A store on a
// deliberately tiny file system (CI mounts a small tmpfs) takes
// concurrent SMTP load while a ballast file fills the disk past the
// shed low watermark. The statfs-keyed policy must degrade to 452
// (shed, not lost: every acked 250 stays durable, every refusal leaves
// the store untouched), and once the ballast is freed the stack must
// recover to 250s on its own. The post-run audit reboots the store
// through full crash recovery and demands the byte-exact acked set:
// nothing acked lost, nothing served that was never acked.
//
// Run it with MAILBOAT_SOAK_DIR pointing at a small (≈16–64 MB)
// file system, e.g.:
//
//	mount -t tmpfs -o size=24m tmpfs /mnt/mbtiny
//	MAILBOAT_SOAK_DIR=/mnt/mbtiny go test ./internal/mailboatd/ -run TestDiskFullSoakSMTP -v
//
// Without the env var the test skips: filling the developer's real
// disk would be rude.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/smtp"
)

const (
	soakUsers     = 8
	soakWorkers   = 4
	soakLowWater  = 4 << 20 // shed below 4 MB free
	soakHighWater = 6 << 20
)

// smtpDeliver runs one MAIL/RCPT/DATA round on an open connection and
// returns the reply code prefix ("250", "452", "451", ...).
func smtpDeliver(conn net.Conn, r *bufio.Reader, user int, body string) (string, error) {
	step := func(cmd, want string) error {
		if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
			return err
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if !strings.HasPrefix(resp, want) {
			return fmt.Errorf("%s: %q", cmd, strings.TrimSpace(resp))
		}
		return nil
	}
	if err := step("MAIL FROM:<soak@x>", "250"); err != nil {
		return "", err
	}
	if err := step(fmt.Sprintf("RCPT TO:<user%d@x>", user), "250"); err != nil {
		return "", err
	}
	if err := step("DATA", "354"); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(conn, "%s\r\n.\r\n", body); err != nil {
		return "", err
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(resp) < 3 {
		return "", fmt.Errorf("short reply %q", resp)
	}
	return resp[:3], nil
}

func TestDiskFullSoakSMTP(t *testing.T) {
	base := os.Getenv("MAILBOAT_SOAK_DIR")
	if base == "" {
		t.Skip("set MAILBOAT_SOAK_DIR to a small scratch file system (tmpfs) to run the disk-full soak")
	}
	root := filepath.Join(base, "store")
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(root)

	opts := Options{
		Users:         soakUsers,
		Seed:          42,
		SyncOnDeliver: true,
		SyncDirs:      true,
		ShedLowWater:  soakLowWater,
		ShedHighWater: soakHighWater,
	}
	a, err := NewWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.fs.StatFS(); !ok {
		a.Close()
		t.Skip("statfs unavailable on this platform; the watermark soak needs it")
	}

	srv := smtp.NewServer(a, soakUsers)
	srv.ReadTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	defer srv.Close()
	smtpAddr := sl.Addr().String()

	var (
		acked    sync.Map // body -> true, on 250
		n250     atomic.Int64
		n452     atomic.Int64
		n451     atomic.Int64
		connErrs atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < soakWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var conn net.Conn
			var r *bufio.Reader
			redial := func() bool {
				if conn != nil {
					conn.Close()
				}
				c, err := net.Dial("tcp", smtpAddr)
				if err != nil {
					connErrs.Add(1)
					return false
				}
				conn, r = c, bufio.NewReader(c)
				if banner, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(banner, "220") {
					connErrs.Add(1)
					return false
				}
				if _, err := fmt.Fprintf(conn, "HELO soak\r\n"); err != nil {
					return false
				}
				if resp, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(resp, "250") {
					return false
				}
				return true
			}
			if !redial() {
				return
			}
			defer conn.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf("soak-w%d-%d", w, i)
				code, err := smtpDeliver(conn, r, (w+i)%soakUsers, body)
				if err != nil {
					if !redial() {
						time.Sleep(10 * time.Millisecond)
					}
					continue
				}
				switch code {
				case "250":
					acked.Store(body, true)
					n250.Add(1)
				case "452":
					n452.Add(1)
				case "451":
					n451.Add(1)
				}
				// An open loop this is not; pace the workers so the
				// tiny disk survives long enough to drill the phases.
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	await := func(what string, deadline time.Duration, done func() bool) {
		t.Helper()
		limit := time.Now().Add(deadline)
		for !done() {
			if time.Now().After(limit) {
				close(stop)
				wg.Wait()
				t.Fatalf("soak: %s never happened (250=%d 452=%d 451=%d connErrs=%d, statfs=%s)",
					what, n250.Load(), n452.Load(), n451.Load(), connErrs.Load(), statfsDesc(a))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: the store accepts mail.
	await("first acked delivery", 10*time.Second, func() bool { return n250.Load() > 0 })

	// Phase 2: fill the disk past the low watermark mid-load.
	ballast := filepath.Join(base, "ballast")
	fill(t, ballast, a)
	defer os.Remove(ballast)

	// Phase 3: the stack degrades to 452 — shed, not lost or hung.
	await("a shed 452 under disk pressure", 20*time.Second, func() bool { return n452.Load() > 0 })

	// Phase 4: free the space; the watermark (with hysteresis) lifts
	// and deliveries recover without any operator action.
	if err := os.Remove(ballast); err != nil {
		t.Fatal(err)
	}
	before := n250.Load()
	await("recovery to 250 after freeing space", 20*time.Second, func() bool { return n250.Load() > before })

	close(stop)
	wg.Wait()

	// Audit: reboot through full crash recovery, then the byte-exact
	// acked-set check — zero acked loss, zero fabrication.
	a.Close()
	b, err := NewWithOptions(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	present := map[string]bool{}
	for u := uint64(0); u < soakUsers; u++ {
		msgs, err := b.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			body := strings.TrimRight(m.Contents, "\n")
			present[body] = true
			if !strings.HasPrefix(body, "soak-w") {
				t.Errorf("store served bytes nobody sent: %q", body)
			}
		}
		b.Unlock(u)
	}
	lost := 0
	acked.Range(func(k, _ any) bool {
		if !present[k.(string)] {
			lost++
			t.Errorf("acked delivery lost after disk-full soak: %q", k)
		}
		return true
	})
	t.Logf("soak: %d acked (all present), %d shed with 452, %d transient 451, %d conn errors; lost=%d",
		n250.Load(), n452.Load(), n451.Load(), connErrs.Load(), lost)
	if n452.Load() == 0 {
		t.Error("no delivery was shed; the drill exercised nothing")
	}
}

// fill writes ballast until the store's file system drops below the
// low watermark (or the disk is hard-full, which also suffices).
func fill(t *testing.T, path string, a *Adapter) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chunk := make([]byte, 256<<10)
	for i := 0; i < 4096; i++ {
		if free, _, ok := a.fs.StatFS(); ok && free < soakLowWater/2 {
			return
		}
		if _, err := f.Write(chunk); err != nil {
			return // ENOSPC: as full as it gets
		}
	}
	t.Fatalf("ballast never filled the disk; is %s really a small file system?", filepath.Dir(path))
}

func statfsDesc(a *Adapter) string {
	free, total, ok := a.fs.StatFS()
	if !ok {
		return "unavailable"
	}
	return fmt.Sprintf("%d/%d free", free, total)
}
