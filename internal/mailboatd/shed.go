package mailboatd

// Overload shedding: resource exhaustion handled at admission time
// instead of discovery time. The shedder sits in front of Deliver and
// refuses work the store could not complete anyway — because too many
// deliveries are already in flight, or because the backing file system
// is (about to be) out of space. Refusing early keeps the failure
// cheap and honest: the client hears SMTP 452 / POP3 "-ERR [SYS/TEMP]"
// and retries, instead of racing a dozen spool writes into ENOSPC and
// timing out. Reads (Pickup) are never shed: serving the mail already
// stored costs no new space.
//
// The space signal is layered, mirroring the checked model:
//   - the real file system, via statfs on the store's root (gfs.OS),
//     with low/high watermark hysteresis so the decision does not
//     flap around the threshold;
//   - the fault drill's durable disk-full latch (gfs.Faulty with
//     FaultNoSpace), when a drill layer is configured;
//   - the operator/drill override ForceNoSpace, which is what the
//     mailbench disk-full drill flips.
//
// The checked counterpart is the mb/nospace+* scenario family: the
// model checker proves a latched store aborts cleanly (never
// ack-then-lose); the shedder is the deployment policy that keeps the
// store out of that regime in the first place.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// shedError is a refusal the front ends must surface as an
// insufficient-storage temp failure (SMTP 452, POP3 "-ERR
// [SYS/TEMP]"). Front ends detect it structurally — via the
// InsufficientStorage method — so they stay decoupled from this
// package.
type shedError string

func (e shedError) Error() string { return string(e) }

// InsufficientStorage marks the error as a storage-capacity refusal.
func (shedError) InsufficientStorage() bool { return true }

// ErrNoSpace reports a delivery shed because the store is out of space
// (watermark breach, disk-full latch, or forced drill). The message
// was NOT accepted; nothing was written.
var ErrNoSpace error = shedError("mailboatd: store out of space, delivery refused")

// ErrOverloaded reports a delivery shed by admission control: the
// in-flight delivery cap is reached. The message was NOT accepted.
var ErrOverloaded error = shedError("mailboatd: too many deliveries in flight, try again later")

// statfsCacheTTL bounds how often the shedder re-reads statfs: space
// moves slowly relative to request rates, and a syscall per delivery
// would dominate the RAM-backed fast path.
const statfsCacheTTL = 100 * time.Millisecond

// shedMetrics is the shed_* / gfs_space_* metric surface. All fields
// may be nil (metrics disabled); obs ignores writes through nil.
type shedMetrics struct {
	freeBytes  *obs.Gauge
	totalBytes *obs.Gauge
	active     *obs.Gauge
	shedSpace  *obs.Counter
	shedLoad   *obs.Counter
}

func newShedMetrics(r *obs.Registry) shedMetrics {
	return shedMetrics{
		freeBytes:  r.Gauge("gfs_space_free_bytes", "Free bytes on the file system backing the store (statfs, cached)."),
		totalBytes: r.Gauge("gfs_space_total_bytes", "Total bytes on the file system backing the store (statfs, cached)."),
		active:     r.Gauge("shed_active", "1 while the store is shedding deliveries for space, 0 otherwise."),
		shedSpace: r.Counter("shed_deliveries_total",
			"Deliveries refused at admission, by reason.", "reason", "space"),
		shedLoad: r.Counter("shed_deliveries_total",
			"Deliveries refused at admission, by reason.", "reason", "overload"),
	}
}

// shedder is the admission-control state. One per adapter; all methods
// are safe for concurrent use.
type shedder struct {
	// maxInFlight caps concurrent admitted deliveries (0 = unlimited).
	maxInFlight int64
	// low/high are the free-byte watermarks: shedding starts when free
	// drops below low and stops when it rises above high (0 = off).
	low, high uint64
	// statfs reads the backing file system's free/total bytes; nil or
	// a false ok disables the watermark policy (the latch and the
	// forced override still work).
	statfs func() (free, total uint64, ok bool)
	// latched reports the fault layer's durable disk-full latch; nil
	// when no fault layer is configured.
	latched func() bool

	inFlight atomic.Int64
	forced   atomic.Bool
	rejected atomic.Uint64

	mu        sync.Mutex
	shedding  bool
	free      uint64
	total     uint64
	statOK    bool
	checkedAt time.Time

	m shedMetrics
}

// admit gates one delivery. A nil error admits it; the caller must
// pair it with release(). A non-nil error is the refusal to hand to
// the client (ErrOverloaded or ErrNoSpace); nothing was admitted.
func (s *shedder) admit() error {
	if s == nil {
		return nil
	}
	if n := s.inFlight.Add(1); s.maxInFlight > 0 && n > s.maxInFlight {
		s.inFlight.Add(-1)
		s.rejected.Add(1)
		s.m.shedLoad.Inc()
		return ErrOverloaded
	}
	if s.noSpaceNow() {
		s.inFlight.Add(-1)
		s.rejected.Add(1)
		s.m.shedSpace.Inc()
		return ErrNoSpace
	}
	return nil
}

// release retires one admitted delivery.
func (s *shedder) release() {
	if s == nil {
		return
	}
	s.inFlight.Add(-1)
}

// noSpaceNow reports whether the store should refuse writes right now:
// the forced drill override, the fault layer's durable latch, or the
// statfs watermark policy.
func (s *shedder) noSpaceNow() bool {
	if s == nil {
		return false
	}
	if s.forced.Load() {
		s.m.active.Set(1)
		return true
	}
	if s.latched != nil && s.latched() {
		s.m.active.Set(1)
		return true
	}
	return s.watermark()
}

// watermark evaluates (and lazily refreshes) the statfs-keyed policy
// with low/high hysteresis.
func (s *shedder) watermark() bool {
	if s.low == 0 || s.statfs == nil {
		s.m.active.Set(0)
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.checkedAt) >= statfsCacheTTL {
		s.free, s.total, s.statOK = s.statfs()
		s.checkedAt = time.Now()
		if s.statOK {
			s.m.freeBytes.Set(int64(s.free))
			s.m.totalBytes.Set(int64(s.total))
		}
	}
	if !s.statOK {
		s.m.active.Set(0)
		return false
	}
	// Hysteresis: cross low to start shedding, high to stop, so free
	// space hovering at one threshold cannot flap the decision.
	if s.shedding {
		if s.free >= s.high {
			s.shedding = false
		}
	} else if s.free < s.low {
		s.shedding = true
	}
	if s.shedding {
		s.m.active.Set(1)
	} else {
		s.m.active.Set(0)
	}
	return s.shedding
}

// ShedStatus is the admission-control snapshot /healthz and the drill
// tooling read. Shedding=true means deliveries are being refused for
// space right now (the in-flight cap is per-request, not a state).
type ShedStatus struct {
	Shedding    bool   `json:"shedding"`
	Reason      string `json:"reason,omitempty"`
	InFlight    int64  `json:"in_flight"`
	MaxInFlight int64  `json:"max_in_flight,omitempty"`
	FreeBytes   uint64 `json:"free_bytes,omitempty"`
	TotalBytes  uint64 `json:"total_bytes,omitempty"`
	LowWater    uint64 `json:"low_water_bytes,omitempty"`
	HighWater   uint64 `json:"high_water_bytes,omitempty"`
	Rejected    uint64 `json:"rejected_total"`
}

// initShed builds the adapter's shedder from its options. Called from
// every constructor path, so the ForceNoSpace drill surface exists
// even with no shed policy configured.
func (a *Adapter) initShed(o Options) {
	s := &shedder{
		maxInFlight: int64(o.MaxInFlight),
		low:         o.ShedLowWater,
		high:        o.ShedHighWater,
	}
	if s.high < s.low {
		// A high watermark at or below low would shed forever once
		// tripped; default to 2x low for sane hysteresis.
		s.high = 2 * s.low
	}
	if a.fs != nil {
		s.statfs = a.fs.StatFS
	}
	if a.faulty != nil {
		s.latched = a.faulty.NoSpace
	}
	if o.Metrics != nil {
		s.m = newShedMetrics(o.Metrics)
	}
	a.shed = s
}

// ShedStatus reports the admission-control snapshot.
func (a *Adapter) ShedStatus() *ShedStatus {
	s := a.shed
	if s == nil {
		return nil
	}
	st := &ShedStatus{
		InFlight:    s.inFlight.Load(),
		MaxInFlight: s.maxInFlight,
		LowWater:    s.low,
		HighWater:   s.high,
		Rejected:    s.rejected.Load(),
	}
	switch {
	case s.forced.Load():
		st.Shedding, st.Reason = true, "forced"
	case s.latched != nil && s.latched():
		st.Shedding, st.Reason = true, "disk-full latch"
	case s.watermark():
		st.Shedding, st.Reason = true, "free space below low watermark"
	}
	s.mu.Lock()
	st.FreeBytes, st.TotalBytes = s.free, s.total
	s.mu.Unlock()
	return st
}

// ForceNoSpace makes the adapter behave as if the disk were full:
// every delivery sheds with ErrNoSpace until ReleaseNoSpace. This is
// the disk-full drill surface (mailbench -drill diskfull); reads keep
// working, and nothing is written to the store while forced.
func (a *Adapter) ForceNoSpace() {
	if a.shed != nil {
		a.shed.forced.Store(true)
		a.shed.m.active.Set(1)
	}
}

// ReleaseNoSpace lifts ForceNoSpace; the store resumes accepting
// deliveries immediately (modulo the real watermark policy).
func (a *Adapter) ReleaseNoSpace() {
	if a.shed != nil {
		a.shed.forced.Store(false)
		a.shed.m.active.Set(0)
	}
}
