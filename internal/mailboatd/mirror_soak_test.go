package mailboatd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/smtp"
)

// replicaSnapshot reads every file of one replica root (data
// directories plus the generation markers) for byte-level comparison.
func replicaSnapshot(t *testing.T, root string, users uint64) map[string]string {
	t.Helper()
	snap := map[string]string{}
	dirs := append([]string{gfs.MirrorMetaDir}, mailboat.Dirs(mailboat.Config{Users: users})...)
	for _, dir := range dirs {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(root, dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			snap[dir+"/"+e.Name()] = string(b)
		}
	}
	return snap
}

// TestMirrorSoakReplicaDeathMidTraffic is the availability drill: a
// mirrored server takes concurrent SMTP traffic, the published replica
// is permanently killed mid-stream (the fail-stop kill switch — a died
// disk), and traffic keeps flowing against the survivor. The stack is
// then killed mid-traffic and rebooted; boot-time recovery must pick
// the survivor by its persisted generation, resilver the stale replica
// back, and the test asserts the §8 durability contract extended with
// redundancy: every ACKNOWLEDGED (250) message is in a mailbox, at
// least one of them was acknowledged after the replica died, and the
// two replica roots are byte-identical afterwards.
func TestMirrorSoakReplicaDeathMidTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	root0, root1 := t.TempDir(), t.TempDir()
	const users = 3
	const clients = 6
	const msgsPerClient = 40

	a, err := NewWithOptions(root0, Options{
		Users:      users,
		Seed:       1,
		MirrorRoot: root1,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv := smtp.NewServer(a, users)
	srv.ReadTimeout = 5 * time.Second
	srv.WriteTimeout = 5 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	var mu sync.Mutex
	acked := map[string]bool{}
	ackedAfterKill := 0
	var killed bool

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(15 * time.Second))
			r := bufio.NewReader(conn)
			step := func(send, want string) bool {
				if send != "" {
					if _, err := fmt.Fprintf(conn, "%s\r\n", send); err != nil {
						return false
					}
				}
				resp, err := r.ReadString('\n')
				return err == nil && strings.HasPrefix(resp, want)
			}
			if !step("", "220") {
				return
			}
			for m := 0; m < msgsPerClient; m++ {
				body := fmt.Sprintf("mirror-client-%d-msg-%d", c, m)
				user := (c + m) % users
				if !step("MAIL FROM:<x@y>", "250") ||
					!step(fmt.Sprintf("RCPT TO:<user%d@z>", user), "250") ||
					!step("DATA", "354") {
					return
				}
				if _, err := fmt.Fprintf(conn, "%s\r\n.\r\n", body); err != nil {
					return
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return
				}
				if strings.HasPrefix(resp, "250") {
					mu.Lock()
					acked[body+"\n"] = true
					if killed {
						ackedAfterKill++
					}
					mu.Unlock()
				}
			}
		}(c)
	}

	// Mid-traffic, kill the replica reads are served from: deliveries
	// must keep committing on the survivor and reads must fail over.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	killed = true
	mu.Unlock()
	a.FailStopReplica(0)

	// Let the degraded mirror take more traffic, then kill the process.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
	a.Close()
	wg.Wait()

	if st := a.MirrorStatus(); !st.Degraded {
		t.Fatalf("mirror not degraded after replica kill: %+v", st)
	}

	// Reboot over the same roots. The dead replica's stale state is
	// still on disk; recovery must pick the survivor by its higher
	// persisted generation and resilver the stale replica from it.
	b, err := NewWithOptions(root0, Options{Users: users, Seed: 2, MirrorRoot: root1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if st := b.MirrorStatus(); st.Degraded || st.Resilvering {
		t.Fatalf("mirror still degraded after reboot resilver: %+v", st)
	}

	// Durability: every acknowledged message is in a mailbox.
	present := map[string]bool{}
	total := 0
	for u := uint64(0); u < users; u++ {
		msgs, err := b.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			present[m.Contents] = true
		}
		total += len(msgs)
		b.Unlock(u)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Logf("mirror soak: %d acked (%d after replica death), %d on disk after reboot",
		len(acked), ackedAfterKill, total)
	if len(acked) == 0 {
		t.Fatal("no message was ever acknowledged; the soak exercised nothing")
	}
	if ackedAfterKill == 0 {
		t.Fatal("no message acknowledged after the replica death; failover was not exercised")
	}
	for body := range acked {
		if !present[body] {
			t.Errorf("acknowledged message lost: %q", strings.TrimSpace(body))
		}
	}

	// Redundancy: the replica roots are byte-identical again, spool
	// garbage included (recovery swept it on both).
	s0, s1 := replicaSnapshot(t, root0, users), replicaSnapshot(t, root1, users)
	if len(s0) != len(s1) {
		t.Fatalf("replica file counts differ after resilver: %d vs %d", len(s0), len(s1))
	}
	for name, c0 := range s0 {
		c1, ok := s1[name]
		if !ok {
			t.Errorf("file %s missing on replica 1", name)
			continue
		}
		if c0 != c1 {
			t.Errorf("file %s differs between replicas", name)
		}
	}
	for _, root := range []string{root0, root1} {
		entries, err := os.ReadDir(filepath.Join(root, mailboat.SpoolDir))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("%d spool files survived recovery under %s", len(entries), root)
		}
	}
}

// TestMirroredAdapterBasics covers the non-drill surface: mirrored
// boots deliver and pick up like the plain adapter, MirrorStatus
// reports healthy, both replicas hold the mail, and MirrorRoot+Fault is
// rejected.
func TestMirroredAdapterBasics(t *testing.T) {
	root0, root1 := t.TempDir(), t.TempDir()
	a, err := NewWithOptions(root0, Options{Users: 2, Seed: 3, MirrorRoot: root1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if a.Mirror() == nil {
		t.Fatal("Mirror() nil on a mirrored adapter")
	}
	if st := a.MirrorStatus(); st == nil || st.Degraded {
		t.Fatalf("fresh mirror unhealthy: %+v", st)
	}
	if err := a.Deliver(0, []byte("both copies")); err != nil {
		t.Fatal(err)
	}
	msgs, _ := a.Pickup(0)
	a.Unlock(0)
	if len(msgs) != 1 || msgs[0].Contents != "both copies" {
		t.Fatalf("pickup after mirrored deliver: %+v", msgs)
	}
	for _, root := range []string{root0, root1} {
		entries, err := os.ReadDir(filepath.Join(root, mailboat.UserDir(0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("replica under %s has %d messages, want 1", root, len(entries))
		}
	}

	if _, err := NewWithOptions(t.TempDir(), Options{
		Users:      1,
		MirrorRoot: t.TempDir(),
		Fault:      &FaultOptions{Rates: gfs.UniformRates(2)},
	}); err == nil {
		t.Fatal("MirrorRoot+Fault accepted")
	}

	// Non-mirrored adapters answer the mirror accessors with nils.
	p, err := New(t.TempDir(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Mirror() != nil || p.MirrorStatus() != nil {
		t.Fatal("plain adapter reports a mirror")
	}
	p.FailStopReplica(0) // must be a no-op, not a panic
}
