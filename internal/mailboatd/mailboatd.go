// Package mailboatd wires the verified Mailboat library (running on the
// real file system) to the unverified SMTP and POP3 front ends — the
// deployment glue of §8.2's "Using Mailboat". It is what cmd/mailboat
// and the network end-to-end tests run.
//
// The adapter exposes the library's transient-failure reporting as
// ErrTransient, which the front ends translate into SMTP 451 / POP3
// "-ERR [SYS/TEMP]". For fault drills, Options.Fault interposes
// gfs.Faulty between the library and the real file system with a
// seeded, replayable schedule.
package mailboatd

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/obs"
)

// ErrTransient reports a transient store failure: the operation did not
// take effect (the delivery was not acknowledged, the delete did not
// remove the message) and may be retried. Front ends must surface it to
// the client as a temporary error, never drop the connection over it.
var ErrTransient = errors.New("mailboatd: transient store failure, try again later")

// FaultOptions configures a deterministic fault-injection layer between
// the library and the OS file system — the seeded drill mode of the
// fault model (see DESIGN.md "Fault model").
type FaultOptions struct {
	// Seed selects the fault schedule; the same seed replays the same
	// schedule bit-for-bit (inspect it with Adapter.FaultLog).
	Seed int64
	// Rates[op] = N injects a fault into roughly 1 in N calls of that
	// class; 0 disables the class. gfs.UniformRates(N) fails them all.
	Rates [gfs.NumFaultOps]uint64
	// MaxFaults, when nonzero, caps the total number of injected faults.
	MaxFaults uint64
	// Latency and LatencyEveryN, when both nonzero, add tail latency to
	// every N-th file-system call of each class.
	Latency       time.Duration
	LatencyEveryN uint64
}

// Options configures an Adapter beyond the basic New parameters.
type Options struct {
	// Users is the mailbox count (required, ≥ 1).
	Users uint64
	// Seed seeds spool-name allocation.
	Seed int64
	// DeliverRetries and DeliverBackoff tune Deliver's retry loop
	// (zero values use the library defaults).
	DeliverRetries int
	DeliverBackoff time.Duration
	// SyncOnDeliver fsyncs spool files before publishing them.
	SyncOnDeliver bool
	// Fault, when non-nil, wraps the file system in gfs.Faulty with a
	// seeded policy.
	Fault *FaultOptions
	// MirrorRoot, when non-empty, runs the store mirrored: replica 0
	// lives under the New root, replica 1 under MirrorRoot, every write
	// goes to both, and reads fail over if a replica is fail-stopped
	// (FailStopReplica, or a real dead disk). Boot-time recovery
	// resilvers a replaced replica from the survivor before serving.
	// Exclusive with Fault: the drill layer injects transient faults
	// into a single backend, which the mirror would misread as replica
	// divergence.
	MirrorRoot string
	// Metrics, when non-nil, registers the full store-side metric
	// surface there: gfs_* file-system counters and latency histograms
	// (measured outermost, so drills count the latency the library
	// experiences including injected faults and retries), mailboat_*
	// library metrics, and mailboatd_ops_total adapter outcomes.
	Metrics *obs.Registry
}

// opMetrics counts adapter-level operation outcomes — the boundary
// where library booleans become ErrTransient. All fields may be nil
// (metrics disabled); obs counters ignore writes through nil.
type opMetrics struct {
	deliverOK, deliverTransient *obs.Counter
	pickupOK                    *obs.Counter
	deleteOK, deleteTransient   *obs.Counter
	unlockOK                    *obs.Counter
}

func newOpMetrics(r *obs.Registry) opMetrics {
	c := func(op, outcome string) *obs.Counter {
		return r.Counter("mailboatd_ops_total",
			"Adapter operations by outcome (transient = reported to the client as retryable).",
			"op", op, "outcome", outcome)
	}
	return opMetrics{
		deliverOK:        c("deliver", "ok"),
		deliverTransient: c("deliver", "transient"),
		pickupOK:         c("pickup", "ok"),
		deleteOK:         c("delete", "ok"),
		deleteTransient:  c("delete", "transient"),
		unlockOK:         c("unlock", "ok"),
	}
}

// Adapter exposes the Mailboat library as the smtp.Deliverer and
// pop3.Maildrop interfaces. It is safe for concurrent use by many
// connection handlers; it implements gfs.T itself with a lock-free
// seeded PRNG for name allocation (an atomic counter fed through
// SplitMix64, so concurrent connections never contend on a shared
// rand.Rand lock while staying deterministic for sequential callers).
type Adapter struct {
	fs     *gfs.OS
	sys    gfs.System
	faulty *gfs.Faulty // nil unless Options.Fault was set
	mb     *mailboat.Mailboat
	cfg    mailboat.Config
	ops    opMetrics

	// Mirror-mode state (nil / zero unless Options.MirrorRoot was set):
	// fs1 is replica 1's backend, rep the per-replica fail-stop layers
	// (the kill switch FailStopReplica flips), mirror the middleware.
	fs1    *gfs.OS
	rep    [2]*gfs.Faulty
	mirror *gfs.Mirrored

	rng atomic.Uint64
}

// New opens (or creates) a mail store under root with the given number
// of users — the original, knob-free constructor.
func New(root string, users uint64, seed int64) (*Adapter, error) {
	return NewWithOptions(root, Options{Users: users, Seed: seed})
}

// NewWithOptions opens (or creates) a mail store under root, running
// recovery first — on boot we cannot know whether the previous process
// exited cleanly, so Recover's spool cleanup always runs, exactly as
// §8.1 prescribes ("run Recover to restore the system following a
// shutdown or crash"). Recovery always runs on the bare file system:
// fault drills exercise steady-state traffic, not the repair path that
// makes the store consistent again.
func NewWithOptions(root string, o Options) (*Adapter, error) {
	cfg := mailboat.Config{
		Users:          o.Users,
		RandBound:      1 << 62,
		SyncOnDeliver:  o.SyncOnDeliver,
		DeliverRetries: o.DeliverRetries,
		DeliverBackoff: o.DeliverBackoff,
	}
	if o.MirrorRoot != "" {
		if o.Fault != nil {
			return nil, errors.New("mailboatd: MirrorRoot and Fault are mutually exclusive")
		}
		return newMirrored(root, o, cfg)
	}
	fs, err := gfs.NewOS(root, mailboat.Dirs(cfg))
	if err != nil {
		return nil, err
	}
	// Metrics wrap OUTERMOST: under a fault drill the histograms record
	// the latency and call counts the library experiences, injected
	// faults included.
	var fsm *gfs.FSMetrics
	sys := gfs.System(fs)
	if o.Metrics != nil {
		fsm = gfs.NewFSMetrics(o.Metrics)
		cfg.Metrics = mailboat.NewMetrics(o.Metrics)
		sys = gfs.NewObserved(fs, fsm)
	}
	a := &Adapter{fs: fs, sys: sys, cfg: cfg}
	if o.Metrics != nil {
		a.ops = newOpMetrics(o.Metrics)
	}
	a.rng.Store(uint64(o.Seed))
	a.mb = mailboat.Recover(a, nil, sys, cfg, nil)
	if o.Fault != nil {
		a.faulty = gfs.NewFaulty(fs, &gfs.SeededPolicy{
			Seed:      o.Fault.Seed,
			Rates:     o.Fault.Rates,
			MaxFaults: o.Fault.MaxFaults,
		})
		a.faulty.Latency = o.Fault.Latency
		a.faulty.LatencyEveryN = o.Fault.LatencyEveryN
		a.faulty.Metrics = fsm
		a.sys = a.faulty
		if fsm != nil {
			a.sys = gfs.NewObserved(a.faulty, fsm)
		}
		a.mb = a.mb.WithSystem(a.sys)
	}
	return a, nil
}

// newMirrored builds the mirrored stack: two OS backends (each with the
// generation-marker directory alongside the data directories), each
// behind a quiet gfs.Faulty whose only job is the FailStopReplica kill
// switch, joined by gfs.Mirrored, with metrics observed outermost.
// Unlike the single-backend boot, recovery runs through the FULL stack:
// Recover's resilver hook needs to see the mirror to repair a replaced
// replica before the first byte of traffic.
func newMirrored(root string, o Options, cfg mailboat.Config) (*Adapter, error) {
	metaDirs := append([]string{gfs.MirrorMetaDir}, mailboat.Dirs(cfg)...)
	fs0, err := gfs.NewOS(root, metaDirs)
	if err != nil {
		return nil, err
	}
	fs1, err := gfs.NewOS(o.MirrorRoot, metaDirs)
	if err != nil {
		fs0.CloseAll()
		return nil, err
	}
	rep := [2]*gfs.Faulty{
		gfs.NewFaulty(fs0, gfs.NeverPolicy{}),
		gfs.NewFaulty(fs1, gfs.NeverPolicy{}),
	}
	m := gfs.NewMirrored(rep[0], rep[1], mailboat.Dirs(cfg))
	sys := gfs.System(m)
	if o.Metrics != nil {
		fsm := gfs.NewFSMetrics(o.Metrics)
		cfg.Metrics = mailboat.NewMetrics(o.Metrics)
		m.Metrics = gfs.NewMirrorMetrics(o.Metrics)
		sys = gfs.NewObserved(m, fsm)
	}
	a := &Adapter{fs: fs0, fs1: fs1, rep: rep, mirror: m, sys: sys, cfg: cfg}
	if o.Metrics != nil {
		a.ops = newOpMetrics(o.Metrics)
	}
	a.rng.Store(uint64(o.Seed))
	a.mb = mailboat.Recover(a, nil, sys, cfg, nil)
	return a, nil
}

// Close releases the cached directory handles.
func (a *Adapter) Close() {
	a.fs.CloseAll()
	if a.fs1 != nil {
		a.fs1.CloseAll()
	}
}

// Users returns the mailbox count.
func (a *Adapter) Users() uint64 { return a.cfg.Users }

// FaultLog returns the injected-fault log when a fault layer is
// configured (nil otherwise) — the replayable record of a drill.
func (a *Adapter) FaultLog() []gfs.FaultEvent {
	if a.faulty == nil {
		return nil
	}
	return a.faulty.Log()
}

// Mirror returns the mirrored middleware when Options.MirrorRoot was
// set, nil otherwise.
func (a *Adapter) Mirror() *gfs.Mirrored { return a.mirror }

// MirrorStatus reports the mirror's replica health (nil when the store
// is not mirrored) — what /healthz serves while degraded.
func (a *Adapter) MirrorStatus() *gfs.MirrorStatus {
	if a.mirror == nil {
		return nil
	}
	st := a.mirror.Status()
	return &st
}

// FailStopReplica permanently kills replica i (0 or 1) — the operator
// kill switch for fail-stop drills. All of that replica's subsequent
// operations fail; the mirror notices on the next touch, fails reads
// over, and runs degraded until the next boot resilvers a replacement.
// No-op when the store is not mirrored or i is out of range.
func (a *Adapter) FailStopReplica(i int) {
	if a.mirror == nil || i < 0 || i > 1 {
		return
	}
	a.rep[i].FailStopNow("operator kill switch")
}

// RandUint64 implements gfs.T: a lock-free SplitMix64 stream over an
// atomic counter. Each call advances the counter by the golden-ratio
// increment and mixes it, so concurrent callers draw distinct values
// without serializing on a mutex.
func (a *Adapter) RandUint64(bound uint64) uint64 {
	if bound == 0 {
		panic("mailboatd: RandUint64 with zero bound")
	}
	x := a.rng.Add(0x9E3779B97F4A7C15)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return (x ^ (x >> 31)) % bound
}

// Deliver implements smtp.Deliverer. ErrTransient means the message was
// NOT accepted (retries exhausted) and the client must retry later.
func (a *Adapter) Deliver(user uint64, msg []byte) error {
	if !a.mb.Deliver(a, nil, user, msg) {
		a.ops.deliverTransient.Inc()
		return ErrTransient
	}
	a.ops.deliverOK.Inc()
	return nil
}

// Pickup implements pop3.Maildrop. The returned error is always nil by
// design, not oversight: every store-level hazard on the pickup path
// is absorbed below this layer. Short reads (POSIX short reads, or
// gfs.Faulty's read-short class) are retried from the advanced offset
// by the library's chunk loop — only a zero-length read means
// end-of-file — and a listed name failing to Open could only come from
// a concurrent delete, which the per-user lock held from Pickup to
// Unlock excludes, so the library skips it as already-handled. Listing
// itself has no fault class in the §8.3 fault model. The error in the
// signature exists for pop3.Maildrop implementations over stores that
// CAN transiently fail a pickup (e.g. a remote store); such
// implementations return ErrTransient and the front end answers
// "-ERR [SYS/TEMP]". TestPickupUnderReadFaults drills this contract
// with every read faulted.
func (a *Adapter) Pickup(user uint64) ([]mailboat.Message, error) {
	msgs := a.mb.Pickup(a, nil, user)
	a.ops.pickupOK.Inc()
	return msgs, nil
}

// Delete implements pop3.Maildrop. ErrTransient means the message is
// still in the maildrop.
func (a *Adapter) Delete(user uint64, id string) error {
	if !a.mb.Delete(a, nil, user, id) {
		a.ops.deleteTransient.Inc()
		return ErrTransient
	}
	a.ops.deleteOK.Inc()
	return nil
}

// Unlock implements pop3.Maildrop.
func (a *Adapter) Unlock(user uint64) {
	a.mb.Unlock(a, nil, user)
	a.ops.unlockOK.Inc()
}
