// Package mailboatd wires the verified Mailboat library (running on the
// real file system) to the unverified SMTP and POP3 front ends — the
// deployment glue of §8.2's "Using Mailboat". It is what cmd/mailboat
// and the network end-to-end tests run.
package mailboatd

import (
	"math/rand"
	"sync"

	"repro/internal/gfs"
	"repro/internal/mailboat"
)

// Adapter exposes the Mailboat library as the smtp.Deliverer and
// pop3.Maildrop interfaces. It is safe for concurrent use by many
// connection handlers; it implements gfs.T itself with a locked PRNG
// for name allocation.
type Adapter struct {
	fs  *gfs.OS
	mb  *mailboat.Mailboat
	cfg mailboat.Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New opens (or creates) a mail store under root with the given number
// of users, running recovery first — on boot we cannot know whether the
// previous process exited cleanly, so Recover's spool cleanup always
// runs, exactly as §8.1 prescribes ("run Recover to restore the system
// following a shutdown or crash").
func New(root string, users uint64, seed int64) (*Adapter, error) {
	cfg := mailboat.Config{Users: users, RandBound: 1 << 62}
	fs, err := gfs.NewOS(root, mailboat.Dirs(cfg))
	if err != nil {
		return nil, err
	}
	a := &Adapter{fs: fs, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	a.mb = mailboat.Recover(a, nil, fs, cfg, nil)
	return a, nil
}

// Close releases the cached directory handles.
func (a *Adapter) Close() { a.fs.CloseAll() }

// Users returns the mailbox count.
func (a *Adapter) Users() uint64 { return a.cfg.Users }

// RandUint64 implements gfs.T with a locked PRNG.
func (a *Adapter) RandUint64(bound uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(a.rng.Int63n(int64(bound)))
}

// Deliver implements smtp.Deliverer.
func (a *Adapter) Deliver(user uint64, msg []byte) error {
	a.mb.Deliver(a, nil, user, msg)
	return nil
}

// Pickup implements pop3.Maildrop.
func (a *Adapter) Pickup(user uint64) ([]mailboat.Message, error) {
	return a.mb.Pickup(a, nil, user), nil
}

// Delete implements pop3.Maildrop.
func (a *Adapter) Delete(user uint64, id string) error {
	a.mb.Delete(a, nil, user, id)
	return nil
}

// Unlock implements pop3.Maildrop.
func (a *Adapter) Unlock(user uint64) {
	a.mb.Unlock(a, nil, user)
}
