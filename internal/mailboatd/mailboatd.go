// Package mailboatd wires the verified Mailboat library (running on the
// real file system) to the unverified SMTP and POP3 front ends — the
// deployment glue of §8.2's "Using Mailboat". It is what cmd/mailboat
// and the network end-to-end tests run.
//
// The adapter exposes the library's transient-failure reporting as
// ErrTransient, which the front ends translate into SMTP 451 / POP3
// "-ERR [SYS/TEMP]". For fault drills, Options.Fault interposes
// gfs.Faulty between the library and the real file system with a
// seeded, replayable schedule.
package mailboatd

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/trace"
)

// ErrTransient reports a transient store failure: the operation did not
// take effect (the delivery was not acknowledged, the delete did not
// remove the message) and may be retried. Front ends must surface it to
// the client as a temporary error, never drop the connection over it.
var ErrTransient = errors.New("mailboatd: transient store failure, try again later")

// FaultOptions configures a deterministic fault-injection layer between
// the library and the OS file system — the seeded drill mode of the
// fault model (see DESIGN.md "Fault model").
type FaultOptions struct {
	// Seed selects the fault schedule; the same seed replays the same
	// schedule bit-for-bit (inspect it with Adapter.FaultLog).
	Seed int64
	// Rates[op] = N injects a fault into roughly 1 in N calls of that
	// class; 0 disables the class. gfs.UniformRates(N) fails them all.
	Rates [gfs.NumFaultOps]uint64
	// MaxFaults, when nonzero, caps the total number of injected faults.
	MaxFaults uint64
	// Latency and LatencyEveryN, when both nonzero, add tail latency to
	// every N-th file-system call of each class.
	Latency       time.Duration
	LatencyEveryN uint64
}

// Options configures an Adapter beyond the basic New parameters.
type Options struct {
	// Users is the mailbox count (required, ≥ 1).
	Users uint64
	// Seed seeds spool-name allocation.
	Seed int64
	// DeliverRetries and DeliverBackoff tune Deliver's retry loop
	// (zero values use the library defaults).
	DeliverRetries int
	DeliverBackoff time.Duration
	// SyncOnDeliver fsyncs spool files before publishing them.
	SyncOnDeliver bool
	// SyncDirs fsyncs the affected mailbox directory before
	// acknowledging a delivery or a delete — the directory half of the
	// checked sync discipline. On a writeback file system (any modern
	// ext4/xfs deployment) an acked operation is only crash-durable
	// with BOTH barriers: SyncOnDeliver makes the message bytes
	// durable, SyncDirs makes the directory entry durable. Running with
	// both off is the honest -no-fsync fast mode, whose weaker checked
	// contract is prefix durability: a crash may take back the newest
	// acked deliveries, but never reorders, fabricates, or punches
	// holes (see the mb/writeback+prefix-contract scenario).
	SyncDirs bool
	// Fault, when non-nil, wraps the file system in gfs.Faulty with a
	// seeded policy.
	Fault *FaultOptions
	// MirrorRoot, when non-empty, runs the store mirrored: replica 0
	// lives under the New root, replica 1 under MirrorRoot, every write
	// goes to both, and reads fail over if a replica is fail-stopped
	// (FailStopReplica, or a real dead disk). Boot-time recovery
	// resilvers a replaced replica from the survivor before serving.
	// Exclusive with Fault: the drill layer injects transient faults
	// into a single backend, which the mirror would misread as replica
	// divergence.
	MirrorRoot string
	// Metrics, when non-nil, registers the full store-side metric
	// surface there: gfs_* file-system counters and latency histograms
	// (measured outermost, so drills count the latency the library
	// experiences including injected faults and retries), mailboat_*
	// library metrics, gfs_integrity_* envelope counters (with
	// Checksum), and mailboatd_ops_total adapter outcomes.
	Metrics *obs.Registry
	// Checksum stores every file inside a self-describing checksum
	// envelope (gfs.Checksummed): reads verify and fail loudly on rot,
	// boot-time recovery scrubs the store, and on a mirrored store each
	// replica gets its own envelope so rotten reads heal from the peer.
	// With Checksum set, recovery runs through the FULL stack (the boot
	// scrub needs the envelope layer), so a Fault drill covers the
	// recovery path too.
	Checksum bool
	// ScrubEvery, when positive, runs a background scrub pass (healing
	// on a mirrored store) at this interval until Close.
	ScrubEvery time.Duration
	// Replica, when non-nil, runs this node as half of a primary/backup
	// replicated pair over the TCP replication transport: the primary
	// acknowledges a Deliver or Delete only after the backup has
	// durably applied it (see ReplicaOptions). Exclusive with
	// MirrorRoot, Fault, and Checksum — replication is cross-machine
	// redundancy and composing it with the same-machine layers is
	// future work.
	Replica *ReplicaOptions
	// QuotaBytes caps each mailbox's stored bytes (0 = unlimited). A
	// delivery that would push the recipient over quota is refused up
	// front as a transient failure with the store untouched; deleting
	// mail credits the bytes back. Usage is re-derived from the store
	// at every recovery, so the bound survives crashes.
	QuotaBytes uint64
	// MaxInFlight caps concurrently admitted deliveries; excess
	// deliveries are refused immediately with ErrOverloaded (surfaced
	// as SMTP 452) instead of queueing into the store. 0 = unlimited.
	MaxInFlight int
	// ShedLowWater and ShedHighWater are free-byte watermarks on the
	// file system backing the store (read via statfs, cached): when
	// free space drops below ShedLowWater the adapter sheds deliveries
	// with ErrNoSpace, and resumes only once free space rises above
	// ShedHighWater (hysteresis; defaults to 2x low when unset). 0
	// disables the watermark policy. Reads are never shed.
	ShedLowWater  uint64
	ShedHighWater uint64
	// Tracer, when non-nil, records request-scoped span trees: the
	// front ends open a root span per verb and hand it to the adapter's
	// *Traced entry points, which run the library on a per-request
	// thread handle carrying the span (the shared Adapter itself stays
	// span-free, since it serves many requests at once). Boot-time
	// recovery is traced too, under op "recover".
	Tracer *trace.Tracer
}

// opMetrics counts adapter-level operation outcomes — the boundary
// where library booleans become ErrTransient. All fields may be nil
// (metrics disabled); obs counters ignore writes through nil.
type opMetrics struct {
	deliverOK, deliverTransient *obs.Counter
	pickupOK                    *obs.Counter
	deleteOK, deleteTransient   *obs.Counter
	unlockOK                    *obs.Counter
}

func newOpMetrics(r *obs.Registry) opMetrics {
	c := func(op, outcome string) *obs.Counter {
		return r.Counter("mailboatd_ops_total",
			"Adapter operations by outcome (transient = reported to the client as retryable).",
			"op", op, "outcome", outcome)
	}
	return opMetrics{
		deliverOK:        c("deliver", "ok"),
		deliverTransient: c("deliver", "transient"),
		pickupOK:         c("pickup", "ok"),
		deleteOK:         c("delete", "ok"),
		deleteTransient:  c("delete", "transient"),
		unlockOK:         c("unlock", "ok"),
	}
}

// Adapter exposes the Mailboat library as the smtp.Deliverer and
// pop3.Maildrop interfaces. It is safe for concurrent use by many
// connection handlers; it implements gfs.T itself with a lock-free
// seeded PRNG for name allocation (an atomic counter fed through
// SplitMix64, so concurrent connections never contend on a shared
// rand.Rand lock while staying deterministic for sequential callers).
type Adapter struct {
	fs     *gfs.OS
	sys    gfs.System
	faulty *gfs.Faulty // nil unless Options.Fault was set
	mb     *mailboat.Mailboat
	cfg    mailboat.Config
	ops    opMetrics

	// Mirror-mode state (nil / zero unless Options.MirrorRoot was set):
	// fs1 is replica 1's backend, rep the per-replica fail-stop layers
	// (the kill switch FailStopReplica flips), mirror the middleware.
	fs1    *gfs.OS
	rep    [2]*gfs.Faulty
	mirror *gfs.Mirrored

	// Integrity state (nil / zero unless Options.Checksum was set):
	// chk is the single-backend envelope layer, chks the per-replica
	// ones under a mirror, integ the shared gfs_integrity_* metrics.
	chk   *gfs.Checksummed
	chks  [2]*gfs.Checksummed
	integ *gfs.IntegrityMetrics

	// Replication state (nil unless Options.Replica was set): node is
	// the protocol engine over this store, replClient the TCP client
	// leg (primary role), replSrv the frame server (backup role, or a
	// listening primary), replStop the pinger's stop signal.
	node       *repl.Node
	replClient *repl.TCPClient
	replSrv    *repl.Server
	replStop   chan struct{}
	replWG     sync.WaitGroup

	tracer *trace.Tracer

	// shed is the delivery admission controller (overload and
	// disk-full shedding); always non-nil after construction so the
	// ForceNoSpace drill surface exists on every deployment.
	shed *shedder

	scrubMu   sync.Mutex // serializes scrub passes
	lastMu    sync.Mutex
	lastScrub gfs.ScrubReport
	lastAt    time.Time
	scrubbed  bool
	scrubStop chan struct{}
	scrubWG   sync.WaitGroup

	rng atomic.Uint64
}

// New opens (or creates) a mail store under root with the given number
// of users — the original, knob-free constructor.
func New(root string, users uint64, seed int64) (*Adapter, error) {
	return NewWithOptions(root, Options{Users: users, Seed: seed})
}

// NewWithOptions opens (or creates) a mail store under root, running
// recovery first — on boot we cannot know whether the previous process
// exited cleanly, so Recover's spool cleanup always runs, exactly as
// §8.1 prescribes ("run Recover to restore the system following a
// shutdown or crash"). Recovery always runs on the bare file system:
// fault drills exercise steady-state traffic, not the repair path that
// makes the store consistent again.
func NewWithOptions(root string, o Options) (*Adapter, error) {
	cfg := mailboat.Config{
		Users:          o.Users,
		RandBound:      1 << 62,
		SyncOnDeliver:  o.SyncOnDeliver,
		SyncDirs:       o.SyncDirs,
		DeliverRetries: o.DeliverRetries,
		DeliverBackoff: o.DeliverBackoff,
		QuotaBytes:     o.QuotaBytes,
	}
	if o.Replica != nil {
		if o.MirrorRoot != "" || o.Fault != nil || o.Checksum {
			return nil, errors.New("mailboatd: Replica is exclusive with MirrorRoot, Fault, and Checksum")
		}
		if !o.Replica.Primary && o.Replica.ListenAddr == "" {
			return nil, errors.New("mailboatd: a backup replica needs a ListenAddr to receive frames on")
		}
		if o.Replica.Primary && o.Replica.PeerAddr == "" {
			return nil, errors.New("mailboatd: a primary replica needs the backup's PeerAddr")
		}
	}
	if o.MirrorRoot != "" {
		if o.Fault != nil {
			return nil, errors.New("mailboatd: MirrorRoot and Fault are mutually exclusive")
		}
		return newMirrored(root, o, cfg)
	}
	dirs := mailboat.Dirs(cfg)
	if o.Replica != nil {
		// The replicated store carries the .repl epoch meta-directory
		// beside the mailboxes it fences.
		dirs = repl.ReplDirs(cfg)
	}
	fs, err := gfs.NewOS(root, dirs)
	if err != nil {
		return nil, err
	}
	// Metrics wrap OUTERMOST: under a fault drill the histograms record
	// the latency and call counts the library experiences, injected
	// faults included.
	var fsm *gfs.FSMetrics
	if o.Metrics != nil {
		fsm = gfs.NewFSMetrics(o.Metrics)
		cfg.Metrics = mailboat.NewMetrics(o.Metrics)
	}
	if o.Checksum {
		// Envelope boot: the files on disk are envelopes, so every
		// layer of the stack — recovery and its boot-time scrub
		// included — must run above the checksum layer. The envelope
		// sits above any fault drill, so injected corruption (and real
		// rot) is detected on read instead of served.
		a := &Adapter{fs: fs, cfg: cfg}
		base := gfs.System(fs)
		if o.Fault != nil {
			a.faulty = gfs.NewFaulty(fs, &gfs.SeededPolicy{
				Seed:      o.Fault.Seed,
				Rates:     o.Fault.Rates,
				MaxFaults: o.Fault.MaxFaults,
			})
			a.faulty.Latency = o.Fault.Latency
			a.faulty.LatencyEveryN = o.Fault.LatencyEveryN
			a.faulty.Metrics = fsm
			base = a.faulty
		}
		a.chk = gfs.NewChecksummed(base, mailboat.Dirs(cfg))
		sys := gfs.System(a.chk)
		if o.Metrics != nil {
			a.integ = gfs.NewIntegrityMetrics(o.Metrics)
			a.chk.Metrics = a.integ
			sys = gfs.NewObserved(a.chk, fsm)
			a.ops = newOpMetrics(o.Metrics)
		}
		a.sys = sys
		a.rng.Store(uint64(o.Seed))
		a.tracer = o.Tracer
		a.bootRecover(sys, cfg)
		// Recovery already swept rot it could reach; record a baseline
		// pass so LastScrub (and the admin /healthz degradation) reflect
		// the store's integrity from the first request on.
		a.Scrub(true)
		if o.ScrubEvery > 0 {
			a.startScrubber(o.ScrubEvery)
		}
		a.initShed(o)
		return a, nil
	}
	sys := gfs.System(fs)
	if o.Metrics != nil {
		sys = gfs.NewObserved(fs, fsm)
	}
	a := &Adapter{fs: fs, sys: sys, cfg: cfg}
	if o.Metrics != nil {
		a.ops = newOpMetrics(o.Metrics)
	}
	a.rng.Store(uint64(o.Seed))
	a.tracer = o.Tracer
	a.bootRecover(sys, cfg)
	if o.Fault != nil {
		a.faulty = gfs.NewFaulty(fs, &gfs.SeededPolicy{
			Seed:      o.Fault.Seed,
			Rates:     o.Fault.Rates,
			MaxFaults: o.Fault.MaxFaults,
		})
		a.faulty.Latency = o.Fault.Latency
		a.faulty.LatencyEveryN = o.Fault.LatencyEveryN
		a.faulty.Metrics = fsm
		a.sys = a.faulty
		if fsm != nil {
			a.sys = gfs.NewObserved(a.faulty, fsm)
		}
		a.mb = a.mb.WithSystem(a.sys)
	}
	if o.Replica != nil {
		if err := a.startReplica(o); err != nil {
			a.fs.CloseAll()
			return nil, err
		}
	}
	if o.ScrubEvery > 0 {
		a.startScrubber(o.ScrubEvery)
	}
	a.initShed(o)
	return a, nil
}

// newMirrored builds the mirrored stack: two OS backends (each with the
// generation-marker directory alongside the data directories), each
// behind a quiet gfs.Faulty whose only job is the FailStopReplica kill
// switch, joined by gfs.Mirrored, with metrics observed outermost.
// Unlike the single-backend boot, recovery runs through the FULL stack:
// Recover's resilver hook needs to see the mirror to repair a replaced
// replica before the first byte of traffic.
func newMirrored(root string, o Options, cfg mailboat.Config) (*Adapter, error) {
	metaDirs := append([]string{gfs.MirrorMetaDir}, mailboat.Dirs(cfg)...)
	fs0, err := gfs.NewOS(root, metaDirs)
	if err != nil {
		return nil, err
	}
	fs1, err := gfs.NewOS(o.MirrorRoot, metaDirs)
	if err != nil {
		fs0.CloseAll()
		return nil, err
	}
	rep := [2]*gfs.Faulty{
		gfs.NewFaulty(fs0, gfs.NeverPolicy{}),
		gfs.NewFaulty(fs1, gfs.NeverPolicy{}),
	}
	a := &Adapter{fs: fs0, fs1: fs1, rep: rep, cfg: cfg}
	r0, r1 := gfs.System(rep[0]), gfs.System(rep[1])
	if o.Checksum {
		// Per-replica envelopes UNDER the mirror: each replica can
		// vouch for its own bytes, so a rotten read fails over to the
		// peer and is healed in place, and the resilver refuses to
		// propagate rot.
		a.chks[0] = gfs.NewChecksummed(rep[0], mailboat.Dirs(cfg))
		a.chks[1] = gfs.NewChecksummed(rep[1], mailboat.Dirs(cfg))
		r0, r1 = a.chks[0], a.chks[1]
	}
	m := gfs.NewMirrored(r0, r1, mailboat.Dirs(cfg))
	a.mirror = m
	sys := gfs.System(m)
	if o.Metrics != nil {
		fsm := gfs.NewFSMetrics(o.Metrics)
		cfg.Metrics = mailboat.NewMetrics(o.Metrics)
		a.cfg.Metrics = cfg.Metrics
		m.Metrics = gfs.NewMirrorMetrics(o.Metrics)
		if o.Checksum {
			a.integ = gfs.NewIntegrityMetrics(o.Metrics)
			a.chks[0].Metrics = a.integ
			a.chks[1].Metrics = a.integ
			m.Integrity = a.integ
		}
		sys = gfs.NewObserved(m, fsm)
	}
	a.sys = sys
	if o.Metrics != nil {
		a.ops = newOpMetrics(o.Metrics)
	}
	a.rng.Store(uint64(o.Seed))
	a.tracer = o.Tracer
	a.bootRecover(sys, cfg)
	if o.Checksum {
		// Record the boot-time integrity baseline (recovery's own scrub
		// runs below the adapter and is not captured by LastScrub).
		a.Scrub(true)
	}
	if o.ScrubEvery > 0 {
		a.startScrubber(o.ScrubEvery)
	}
	a.initShed(o)
	return a, nil
}

// Close stops the background scrubber (waiting out any in-flight
// pass), tears down the replication machinery, and releases the cached
// directory handles.
func (a *Adapter) Close() {
	if a.scrubStop != nil {
		close(a.scrubStop)
		a.scrubWG.Wait()
		a.scrubStop = nil
	}
	a.stopReplica()
	a.fs.CloseAll()
	if a.fs1 != nil {
		a.fs1.CloseAll()
	}
}

// Scrub runs one integrity pass over the store through whatever
// integrity layers the stack has: a mirrored store verifies both
// replicas and (when heal is set) rewrites rotten copies from the good
// peer; a single-backend envelope detects only. ok is false when the
// stack has no integrity layer to scrub with (no Checksum, no mirror).
// Passes are serialized; concurrent mail traffic keeps flowing (a file
// mid-append reads as unsealed, which a scrub never touches).
func (a *Adapter) Scrub(heal bool) (gfs.ScrubReport, bool) {
	sc := gfs.AsScrubber(a.sys)
	if sc == nil {
		return gfs.ScrubReport{}, false
	}
	a.scrubMu.Lock()
	defer a.scrubMu.Unlock()
	start := time.Now()
	rep := sc.Scrub(a, heal)
	a.integ.ScrubDone(time.Since(start))
	a.lastMu.Lock()
	a.lastScrub, a.lastAt, a.scrubbed = rep, time.Now(), true
	a.lastMu.Unlock()
	return rep, true
}

// LastScrub returns the most recent scrub pass's report and finish
// time; ok is false when no pass has run yet.
func (a *Adapter) LastScrub() (rep gfs.ScrubReport, at time.Time, ok bool) {
	a.lastMu.Lock()
	defer a.lastMu.Unlock()
	return a.lastScrub, a.lastAt, a.scrubbed
}

// IntegrityDetected sums the envelope layers' detection counters —
// how many rotten reads the store has refused to serve since boot.
func (a *Adapter) IntegrityDetected() uint64 {
	var n uint64
	if a.chk != nil {
		n += a.chk.Detected()
	}
	for i := range a.chks {
		if a.chks[i] != nil {
			n += a.chks[i].Detected()
		}
	}
	return n
}

// startScrubber runs Scrub(heal) at the given interval until Close.
func (a *Adapter) startScrubber(every time.Duration) {
	a.scrubStop = make(chan struct{})
	a.scrubWG.Add(1)
	go func() {
		defer a.scrubWG.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-a.scrubStop:
				return
			case <-tick.C:
				a.Scrub(true)
			}
		}
	}()
}

// CorruptReplica flips one byte of a stored mailbox file on replica i
// (use 0 on a single-backend store) — the silent-corruption drill, the
// live analog of the checker's gfs.FaultCorrupt class. It mangles the
// raw bytes on disk UNDERNEATH every integrity layer, exactly as shelf
// rot would. Returns the "dir/name" it mangled, or "" when the replica
// holds no mailbox files (or the store cannot corrupt in place).
func (a *Adapter) CorruptReplica(i int) string {
	backend := gfs.System(a.fs)
	if a.mirror != nil && i == 1 {
		backend = a.fs1
	}
	c := gfs.AsCorrupter(backend)
	if c == nil {
		return ""
	}
	for u := uint64(0); u < a.cfg.Users; u++ {
		dir := mailboat.UserDir(u)
		for _, name := range backend.List(a, dir) {
			if c.CorruptFile(a, dir, name, gfs.CorruptFlip) {
				return dir + "/" + name
			}
		}
	}
	return ""
}

// Users returns the mailbox count.
func (a *Adapter) Users() uint64 { return a.cfg.Users }

// FaultLog returns the injected-fault log when a fault layer is
// configured (nil otherwise) — the replayable record of a drill.
func (a *Adapter) FaultLog() []gfs.FaultEvent {
	if a.faulty == nil {
		return nil
	}
	return a.faulty.Log()
}

// Mirror returns the mirrored middleware when Options.MirrorRoot was
// set, nil otherwise.
func (a *Adapter) Mirror() *gfs.Mirrored { return a.mirror }

// MirrorStatus reports the mirror's replica health (nil when the store
// is not mirrored) — what /healthz serves while degraded.
func (a *Adapter) MirrorStatus() *gfs.MirrorStatus {
	if a.mirror == nil {
		return nil
	}
	st := a.mirror.Status()
	return &st
}

// FailStopReplica permanently kills replica i (0 or 1) — the operator
// kill switch for fail-stop drills. All of that replica's subsequent
// operations fail; the mirror notices on the next touch, fails reads
// over, and runs degraded until the next boot resilvers a replacement.
// No-op when the store is not mirrored or i is out of range.
func (a *Adapter) FailStopReplica(i int) {
	if a.mirror == nil || i < 0 || i > 1 {
		return
	}
	a.rep[i].FailStopNow("operator kill switch")
}

// RandUint64 implements gfs.T: a lock-free SplitMix64 stream over an
// atomic counter. Each call advances the counter by the golden-ratio
// increment and mixes it, so concurrent callers draw distinct values
// without serializing on a mutex.
func (a *Adapter) RandUint64(bound uint64) uint64 {
	if bound == 0 {
		panic("mailboatd: RandUint64 with zero bound")
	}
	x := a.rng.Add(0x9E3779B97F4A7C15)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return (x ^ (x >> 31)) % bound
}

// reqT is the per-request thread handle for traced requests: it draws
// randomness from the shared adapter but carries the request's active
// span (trace.Carrier). The Adapter itself cannot carry spans — it is
// one value shared by every connection handler.
type reqT struct {
	a    *Adapter
	span *trace.Span
}

// RandUint64 implements gfs.T.
func (r *reqT) RandUint64(bound uint64) uint64 { return r.a.RandUint64(bound) }

// TraceSpan implements trace.Carrier.
func (r *reqT) TraceSpan() *trace.Span { return r.span }

// SetTraceSpan implements trace.Carrier.
func (r *reqT) SetTraceSpan(s *trace.Span) { r.span = s }

// thread returns the thread handle for a request: the shared adapter
// when untraced, a per-request carrier when a root span is present.
func (a *Adapter) thread(sp *trace.Span) gfs.T {
	if sp == nil {
		return a
	}
	return &reqT{a: a, span: sp}
}

// bootRecover runs crash recovery; with a tracer configured the boot is
// recorded as a trace under op "recover" (resilver, scrub, and spool
// sweep each show as stage spans).
func (a *Adapter) bootRecover(sys gfs.System, cfg mailboat.Config) {
	root := a.tracer.Start("recover", "mailboatd.boot")
	a.mb = mailboat.Recover(a.thread(root), nil, sys, cfg, nil)
	root.End()
}

// Tracer returns the adapter's tracer (nil when tracing is off).
func (a *Adapter) Tracer() *trace.Tracer { return a.tracer }

// Deliver implements smtp.Deliverer. ErrTransient means the message was
// NOT accepted (retries exhausted) and the client must retry later.
func (a *Adapter) Deliver(user uint64, msg []byte) error {
	return a.DeliverTraced(nil, user, msg)
}

// DeliverTraced is Deliver under a front-end root span (nil = untraced;
// it implements smtp.TracedDeliverer). Admission control runs first:
// a delivery shed for overload or space returns ErrOverloaded or
// ErrNoSpace (both carrying the InsufficientStorage marker the front
// ends turn into SMTP 452) without touching the store.
func (a *Adapter) DeliverTraced(sp *trace.Span, user uint64, msg []byte) error {
	if err := a.shed.admit(); err != nil {
		a.ops.deliverTransient.Inc()
		return err
	}
	defer a.shed.release()
	if a.node != nil {
		return a.deliverReplicated(sp, user, msg)
	}
	if !a.mb.Deliver(a.thread(sp), nil, user, msg) {
		a.ops.deliverTransient.Inc()
		if a.shed.noSpaceNow() {
			// The retry loop died against a full store (the latch can
			// trip mid-delivery, after admission): report it as the
			// storage refusal it is, not a generic transient.
			return ErrNoSpace
		}
		return ErrTransient
	}
	a.ops.deliverOK.Inc()
	return nil
}

// Pickup implements pop3.Maildrop. The returned error is always nil by
// design, not oversight: every store-level hazard on the pickup path
// is absorbed below this layer. Short reads (POSIX short reads, or
// gfs.Faulty's read-short class) are retried from the advanced offset
// by the library's chunk loop — only a zero-length read means
// end-of-file — and a listed name failing to Open could only come from
// a concurrent delete, which the per-user lock held from Pickup to
// Unlock excludes, so the library skips it as already-handled. Listing
// itself has no fault class in the §8.3 fault model. The error in the
// signature exists for pop3.Maildrop implementations over stores that
// CAN transiently fail a pickup (e.g. a remote store); such
// implementations return ErrTransient and the front end answers
// "-ERR [SYS/TEMP]". TestPickupUnderReadFaults drills this contract
// with every read faulted.
func (a *Adapter) Pickup(user uint64) ([]mailboat.Message, error) {
	return a.PickupTraced(nil, user)
}

// PickupTraced is Pickup under a front-end root span (nil = untraced;
// it implements pop3.TracedMaildrop).
func (a *Adapter) PickupTraced(sp *trace.Span, user uint64) ([]mailboat.Message, error) {
	msgs := a.mb.Pickup(a.thread(sp), nil, user)
	a.ops.pickupOK.Inc()
	return msgs, nil
}

// Delete implements pop3.Maildrop. ErrTransient means the message is
// still in the maildrop.
func (a *Adapter) Delete(user uint64, id string) error {
	return a.DeleteTraced(nil, user, id)
}

// DeleteTraced is Delete under a front-end root span (nil = untraced;
// it implements pop3.TracedMaildrop).
func (a *Adapter) DeleteTraced(sp *trace.Span, user uint64, id string) error {
	if a.node != nil {
		return a.deleteReplicated(sp, user, id)
	}
	if !a.mb.Delete(a.thread(sp), nil, user, id) {
		a.ops.deleteTransient.Inc()
		return ErrTransient
	}
	a.ops.deleteOK.Inc()
	return nil
}

// Unlock implements pop3.Maildrop.
func (a *Adapter) Unlock(user uint64) {
	a.mb.Unlock(a, nil, user)
	a.ops.unlockOK.Inc()
}
