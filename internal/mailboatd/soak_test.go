package mailboatd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/smtp"
)

// TestCrashRestartSoakUnderFaults is the end-to-end robustness drill:
// several rounds of a fault-injected server taking concurrent SMTP
// traffic, each round ending with the stack being killed mid-traffic
// (forced shutdown plus adapter close, the process-crash analog). After
// the last round a clean, fault-free boot runs Recover and the test
// asserts the §8 durability contract at the wire level: every message
// the server ACKNOWLEDGED (250) is in a mailbox, and no spool garbage
// survived recovery.
func TestCrashRestartSoakUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	root := t.TempDir()
	const users = 3
	const rounds = 4
	const clientsPerRound = 6
	const msgsPerClient = 4

	var mu sync.Mutex
	acked := map[string]bool{}

	for round := 0; round < rounds; round++ {
		a, err := NewWithOptions(root, Options{
			Users: users,
			Seed:  int64(round + 1),
			Fault: &FaultOptions{
				Seed:  int64(100 + round),
				Rates: gfs.UniformRates(6), // every class, 1 in 6 calls
			},
			DeliverRetries: 2,
		})
		if err != nil {
			t.Fatal(err)
		}

		srv := smtp.NewServer(a, users)
		srv.ReadTimeout = 5 * time.Second
		srv.WriteTimeout = 5 * time.Second
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()

		var wg sync.WaitGroup
		for c := 0; c < clientsPerRound; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				r := bufio.NewReader(conn)
				step := func(send, want string) bool {
					if send != "" {
						if _, err := fmt.Fprintf(conn, "%s\r\n", send); err != nil {
							return false
						}
					}
					resp, err := r.ReadString('\n')
					return err == nil && strings.HasPrefix(resp, want)
				}
				if !step("", "220") {
					return
				}
				for m := 0; m < msgsPerClient; m++ {
					body := fmt.Sprintf("round-%d-client-%d-msg-%d", round, c, m)
					user := (c + m) % users
					if !step("MAIL FROM:<x@y>", "250") ||
						!step(fmt.Sprintf("RCPT TO:<user%d@z>", user), "250") ||
						!step("DATA", "354") {
						return
					}
					if _, err := fmt.Fprintf(conn, "%s\r\n.\r\n", body); err != nil {
						return
					}
					resp, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if strings.HasPrefix(resp, "250") {
						// The server acknowledged: from here on, losing
						// this message is a durability violation.
						mu.Lock()
						acked[body+"\n"] = true
						mu.Unlock()
					}
					// 451 (transient failure) is fine: not acknowledged,
					// no durability obligation.
				}
			}(c)
		}

		// Kill the stack mid-traffic: force-close every connection with
		// an already-expired context, then drop the store handles — the
		// closest a test can get to the process dying.
		time.Sleep(time.Duration(10+round*10) * time.Millisecond)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		srv.Shutdown(ctx)
		a.Close()
		wg.Wait()
	}

	// Clean boot, no faults: New runs Recover, which must delete every
	// leftover spool file and leave exactly the published messages.
	a, err := New(root, users, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	present := map[string]bool{}
	total := 0
	for u := uint64(0); u < users; u++ {
		msgs, err := a.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			present[m.Contents] = true
		}
		total += len(msgs)
		a.Unlock(u)
	}

	mu.Lock()
	defer mu.Unlock()
	t.Logf("soak: %d messages acked, %d on disk after recovery", len(acked), total)
	if len(acked) == 0 {
		t.Fatal("no message was ever acknowledged; the soak exercised nothing")
	}
	for body := range acked {
		if !present[body] {
			t.Errorf("acknowledged message lost: %q", strings.TrimSpace(body))
		}
	}

	// No spool garbage after recovery.
	entries, err := os.ReadDir(filepath.Join(root, mailboat.SpoolDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spool files survived recovery", len(entries))
	}
}

// TestFaultDrillIsReplayable checks the seeded drill workflow end to
// end: two adapters over identical stores, identical traffic, and the
// same fault seed must produce identical fault logs.
func TestFaultDrillIsReplayable(t *testing.T) {
	run := func() []gfs.FaultEvent {
		a, err := NewWithOptions(t.TempDir(), Options{
			Users: 2,
			Seed:  7,
			Fault: &FaultOptions{Seed: 5, Rates: gfs.UniformRates(3)},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		for i := 0; i < 10; i++ {
			a.Deliver(uint64(i%2), []byte(fmt.Sprintf("drill %d", i)))
		}
		return a.FaultLog()
	}
	log1, log2 := run(), run()
	if len(log1) == 0 {
		t.Fatal("drill injected no faults")
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed, different drills:\n%v\nvs\n%v", log1, log2)
	}
}

// TestDeliverReportsTransientFailure: with every append failing, the
// adapter must return ErrTransient (the SMTP layer turns that into a
// 451) and leave no trace of the failed delivery.
func TestDeliverReportsTransientFailure(t *testing.T) {
	root := t.TempDir()
	var rates [gfs.NumFaultOps]uint64
	rates[gfs.FaultAppend] = 1
	a, err := NewWithOptions(root, Options{
		Users:          1,
		Fault:          &FaultOptions{Rates: rates},
		DeliverRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Deliver(0, []byte("doomed")); err != ErrTransient {
		t.Fatalf("Deliver under total append failure: %v, want ErrTransient", err)
	}
	msgs, _ := a.Pickup(0)
	a.Unlock(0)
	if len(msgs) != 0 {
		t.Fatalf("failed delivery left messages: %+v", msgs)
	}
	entries, err := os.ReadDir(filepath.Join(root, mailboat.SpoolDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed delivery left %d spool files", len(entries))
	}
}

// TestRandUint64ConcurrentAndDeterministic covers the PRNG fix: the
// lock-free generator must neither race nor repeat values under
// concurrency, and must be reproducible for sequential callers.
func TestRandUint64ConcurrentAndDeterministic(t *testing.T) {
	mk := func() *Adapter {
		a, err := New(t.TempDir(), 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		return a
	}

	// Sequential determinism: same seed, same stream.
	a1, a2 := mk(), mk()
	for i := 0; i < 100; i++ {
		if v1, v2 := a1.RandUint64(1<<62), a2.RandUint64(1<<62); v1 != v2 {
			t.Fatalf("draw %d: %d != %d", i, v1, v2)
		}
	}

	// Concurrent draws: no duplicates across goroutines (the counter
	// guarantees distinct inputs; SplitMix64 is a bijection).
	a := mk()
	const goroutines, draws = 8, 1000
	results := make(chan []uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			out := make([]uint64, draws)
			for i := range out {
				out[i] = a.RandUint64(1 << 62)
			}
			results <- out
		}()
	}
	seen := make(map[uint64]bool, goroutines*draws)
	for g := 0; g < goroutines; g++ {
		for _, v := range <-results {
			if seen[v] {
				t.Fatal("duplicate draw under concurrency")
			}
			seen[v] = true
		}
	}
}
