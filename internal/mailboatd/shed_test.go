package mailboatd

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// insufficientStorage mirrors the front ends' structural detection of
// storage-capacity refusals.
func insufficientStorage(err error) bool {
	is, ok := err.(interface{ InsufficientStorage() bool })
	return ok && is.InsufficientStorage()
}

// TestShedErrorsCarryStorageMarker pins the contract the SMTP front
// end relies on: both admission refusals carry the
// InsufficientStorage marker (so DATA answers 452, not 451), and the
// plain transient error does not.
func TestShedErrorsCarryStorageMarker(t *testing.T) {
	if !insufficientStorage(ErrNoSpace) {
		t.Error("ErrNoSpace lacks the InsufficientStorage marker")
	}
	if !insufficientStorage(ErrOverloaded) {
		t.Error("ErrOverloaded lacks the InsufficientStorage marker")
	}
	if insufficientStorage(ErrTransient) {
		t.Error("ErrTransient must NOT carry the InsufficientStorage marker")
	}
}

// TestForceNoSpaceShedsAndRecovers drives the disk-full drill surface
// through the whole SMTP stack: force the latch, watch DATA answer 452
// with the store untouched, release, and watch delivery resume.
func TestForceNoSpaceShedsAndRecovers(t *testing.T) {
	a, smtpAddr, popAddr := startStack(t, t.TempDir())

	a.ForceNoSpace()
	st := a.ShedStatus()
	if st == nil || !st.Shedding || st.Reason != "forced" {
		t.Fatalf("ShedStatus while forced = %+v", st)
	}
	if err := a.Deliver(1, []byte("shed me")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Deliver while forced = %v, want ErrNoSpace", err)
	}

	s := dialLine(t, smtpAddr)
	s.cmd(t, "", "220")
	s.cmd(t, "HELO test", "250")
	s.cmd(t, "MAIL FROM:<a@x>", "250")
	s.cmd(t, "RCPT TO:<user1@x>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "full disk mail\r\n.\r\n")
	if resp, err := s.r.ReadString('\n'); err != nil || !strings.HasPrefix(resp, "452") {
		t.Fatalf("DATA while shedding: %q %v, want 452", resp, err)
	}

	// The refusal left the store untouched; reads are never shed.
	p := dialLine(t, popAddr)
	p.cmd(t, "", "+OK")
	p.cmd(t, "USER user1", "+OK")
	p.cmd(t, "PASS x", "+OK maildrop has 0")
	p.cmd(t, "QUIT", "+OK")

	a.ReleaseNoSpace()
	if st := a.ShedStatus(); st.Shedding {
		t.Fatalf("still shedding after release: %+v", st)
	}
	s.cmd(t, "MAIL FROM:<a@x>", "250")
	s.cmd(t, "RCPT TO:<user1@x>", "250")
	s.cmd(t, "DATA", "354")
	fmt.Fprintf(s.conn, "space freed\r\n.\r\n")
	if resp, err := s.r.ReadString('\n'); err != nil || !strings.HasPrefix(resp, "250") {
		t.Fatalf("DATA after release: %q %v, want 250", resp, err)
	}
	s.cmd(t, "QUIT", "221")
	if n := a.ShedStatus().Rejected; n < 2 {
		t.Errorf("rejected counter = %d, want >= 2 (direct + SMTP shed)", n)
	}
}

// TestMaxInFlightSheds pins the admission cap: with the cap occupied,
// a delivery is refused with ErrOverloaded without touching the store,
// and admitting releases its slot on completion.
func TestMaxInFlightSheds(t *testing.T) {
	a, err := NewWithOptions(t.TempDir(), Options{Users: 2, Seed: 1, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Occupy the only slot, as a stuck in-flight delivery would.
	a.shed.inFlight.Add(1)
	if err := a.Deliver(0, []byte("overload")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Deliver at capacity = %v, want ErrOverloaded", err)
	}
	a.shed.inFlight.Add(-1)

	if err := a.Deliver(0, []byte("fits now")); err != nil {
		t.Fatalf("Deliver with a free slot: %v", err)
	}
	if got := a.shed.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight after completion = %d, want 0 (slot leaked)", got)
	}
}

// TestWatermarkHysteresis drives the statfs-keyed policy through a
// fake space trajectory: shedding starts below the low watermark,
// holds until free space crosses the HIGH watermark (no flapping in
// the band between them), then stops.
func TestWatermarkHysteresis(t *testing.T) {
	free := uint64(100)
	s := &shedder{
		low:  10,
		high: 20,
		statfs: func() (uint64, uint64, bool) {
			return free, 1000, true
		},
	}
	at := func(f uint64, want bool, when string) {
		t.Helper()
		free = f
		s.checkedAt = time.Time{} // expire the statfs cache
		if got := s.noSpaceNow(); got != want {
			t.Errorf("%s (free=%d): shedding=%v, want %v", when, f, got, want)
		}
	}
	at(100, false, "plenty of space")
	at(11, false, "just above low")
	at(9, true, "crossed low")
	at(15, true, "in the hysteresis band while shedding")
	at(19, true, "just below high while shedding")
	at(25, false, "crossed high")
	at(15, false, "in the band while not shedding")
}

// TestWatermarkStatfsUnavailable: a backend with no statfs (non-Linux,
// or a modeled store) must not shed — the watermark policy disables
// itself rather than failing closed on missing data.
func TestWatermarkStatfsUnavailable(t *testing.T) {
	s := &shedder{
		low:    10,
		high:   20,
		statfs: func() (uint64, uint64, bool) { return 0, 0, false },
	}
	if s.noSpaceNow() {
		t.Error("shedding with no statfs signal")
	}
}
