package mailboatd

import (
	"net"
	"time"

	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/repl"
	"repro/internal/trace"
)

// This file wires the replication protocol into the deployment: the
// same internal/repl code the model checker verifies, driven over the
// length-prefixed TCP transport. A replicated adapter routes Deliver
// and Delete through the protocol's remote-first client leg — an
// acknowledged operation is on the backup's disk before the SMTP 250
// goes out — while Pickup stays a local read of the primary's store.

// ReplicaOptions configures primary/backup replication. A deployment
// runs two mailboat processes: the primary (Primary true, PeerAddr
// pointing at the backup's ListenAddr) serves clients and replicates
// every mutation before acking; the backup (Primary false, ListenAddr
// set) serves the replication protocol and no client traffic.
type ReplicaOptions struct {
	// Primary: this node leads — it serves mail clients and replicates
	// to the peer before acknowledging.
	Primary bool
	// PeerAddr is the peer's replication listener. Required on the
	// primary; optional on the backup (where it is only a status probe).
	PeerAddr string
	// ListenAddr, when non-empty, serves this node's replication
	// endpoint. The backup role requires it.
	ListenAddr string
	// CallTimeout bounds one replication RPC (default 2s).
	CallTimeout time.Duration
	// PingEvery is the primary's peer-liveness probe period (default
	// 1s). The probe is what re-admits a restarted backup: a successful
	// dial clears the refused-streak verdict, and a behind answer (the
	// backup's volatile apply cursor trails our sequence space) triggers
	// the catch-up resync directly — an idle primary re-syncs a rejoined
	// backup within one ping period, it does not wait for traffic.
	PingEvery time.Duration
	// MaxCallRetries and RetryBackoff tune the client leg (zero values
	// use the repl defaults, except RetryBackoff which defaults to 25ms
	// here — a deployment must pace its retries).
	MaxCallRetries int
	RetryBackoff   time.Duration
}

// deliverAttempts bounds name-collision redraws, as in the library.
const deliverAttempts = 128

// startReplica builds the node, transport, and background loops. The
// caller validated exclusivity (replica mode runs on the plain store
// path) and built the store with repl.ReplDirs so the epoch
// meta-directory exists.
func (a *Adapter) startReplica(o Options) error {
	ro := o.Replica
	backoff := ro.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	rcfg := repl.Config{
		MaxCallRetries: ro.MaxCallRetries,
		RetryBackoff:   backoff,
	}
	if o.Metrics != nil {
		rcfg.Metrics = repl.NewMetrics(o.Metrics)
	}
	id := 1
	if ro.Primary {
		id = 0
	}
	a.node = repl.NewNode(a, id, a.mb, a.sys, rcfg)
	if ro.PeerAddr != "" {
		a.replClient = &repl.TCPClient{Addr: ro.PeerAddr, Timeout: ro.CallTimeout}
		if o.Metrics != nil {
			a.replClient.Metrics = netmodel.NewNetMetrics(o.Metrics)
		}
		a.node.SetPeer(a.replClient, a.replClient.PeerDead, nil)
	}
	a.node.SetPrimary(ro.Primary)
	if ro.ListenAddr != "" {
		lis, err := net.Listen("tcp", ro.ListenAddr)
		if err != nil {
			return err
		}
		a.replSrv = repl.NewServer(a.node, a)
		a.replWG.Add(1)
		go func() {
			defer a.replWG.Done()
			a.replSrv.Serve(lis)
		}()
	}
	if ro.Primary && a.replClient != nil {
		// Boot-time catch-up: the backup's apply cursor is volatile, so
		// a fresh primary cannot assume the backup is current. Best
		// effort — a failed attempt leaves the pair degraded (visible on
		// /healthz) and the first replicated operation retries through
		// the need-resync path.
		a.node.Resync(a)
		every := ro.PingEvery
		if every <= 0 {
			every = time.Second
		}
		stop := make(chan struct{})
		a.replStop = stop
		a.replWG.Add(1)
		go func() {
			defer a.replWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					// A behind verdict (StNeedResync) means the backup
					// answered but its apply cursor trails ours — a
					// rejoined node with a stale store. Resync it now;
					// waiting for the next replicated operation would
					// leave the pair reporting healthy over a stale
					// backup for as long as the primary stays idle.
					if _, behind := a.node.PingCheck(a); behind {
						a.node.Resync(a)
					}
				}
			}
		}()
	}
	return nil
}

// stopReplica tears the replication machinery down (Close calls it).
func (a *Adapter) stopReplica() {
	if a.replStop != nil {
		close(a.replStop)
		a.replStop = nil
	}
	if a.node != nil {
		a.node.Shutdown()
	}
	if a.replSrv != nil {
		a.replSrv.Close()
	}
	if a.replClient != nil {
		a.replClient.Close()
	}
	a.replWG.Wait()
}

// ReplNode exposes the protocol engine (nil when not replicated) —
// drills and tests reach the resync and status surface through it.
func (a *Adapter) ReplNode() *repl.Node { return a.node }

// ReplTransport exposes the TCP client leg (nil when not replicated or
// no peer configured) — the partition drill's gate lives on it.
func (a *Adapter) ReplTransport() *repl.TCPClient { return a.replClient }

// ReplHealth reports the replication health snapshot (nil when the
// adapter does not run replicated) — what /healthz serves. Degraded
// means the pair cannot currently tolerate losing this node: the
// primary cannot reach its backup (partitioned, refused, or fenced
// dead — it is acknowledging alone or about to refuse), or a catch-up
// resync is still rebuilding state.
func (a *Adapter) ReplHealth() *repl.Health {
	if a.node == nil {
		return nil
	}
	st := a.node.Status()
	h := &repl.Health{Status: st, PeerReachable: true}
	if a.replClient != nil {
		h.PeerReachable = a.replClient.Reachable()
	}
	h.Degraded = st.Resyncing ||
		(st.Role == "primary" && a.replClient != nil && !h.PeerReachable)
	return h
}

// deliverReplicated routes one delivery through the protocol:
// replicate to the backup under (epoch, seq), apply locally, ack —
// drawing fresh names on collision exactly like the library's own
// loop. Every non-OK outcome surfaces as ErrTransient (SMTP 451): on
// OpFailed the mailbox pair is untouched; on OpIndeterminate the
// operation is durable on the backup but this store is dying — it is
// counted, never re-executed here, and the catch-up resync reconciles
// the pair.
func (a *Adapter) deliverReplicated(sp *trace.Span, user uint64, msg []byte) error {
	t := a.thread(sp)
	for try := 0; try < deliverAttempts; try++ {
		name := mailboat.MsgName(a.RandUint64(a.cfg.RandBound))
		switch a.node.DeliverNamed(t, user, name, msg) {
		case repl.OpOK:
			a.ops.deliverOK.Inc()
			return nil
		case repl.OpNameTaken:
			continue // collision: redraw
		default:
			a.ops.deliverTransient.Inc()
			return ErrTransient
		}
	}
	a.ops.deliverTransient.Inc()
	return ErrTransient
}

// deleteReplicated routes one delete through the protocol.
func (a *Adapter) deleteReplicated(sp *trace.Span, user uint64, id string) error {
	if a.node.DeleteNamed(a.thread(sp), user, id) != repl.OpOK {
		a.ops.deleteTransient.Inc()
		return ErrTransient
	}
	a.ops.deleteOK.Inc()
	return nil
}
