package mailboatd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mailboat"
	"repro/internal/obs"
	"repro/internal/smtp"
)

// reserveAddr picks a free loopback address for a listener that will
// be (re)bound later.
func reserveAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestReplicaSoak is the deployment drill for the replicated pair: a
// primary and backup over real TCP take concurrent SMTP traffic while
// the drill (1) partitions the replication link and heals it, (2)
// kills the backup process outright — the primary must detect the
// death and keep serving alone — and (3) restarts the backup, which
// must be re-admitted through a catch-up resync. The §8 contract at
// the end: every message the server ACKNOWLEDGED (250 on the wire, or
// a nil Deliver) is in a mailbox, and once the pair reports in-sync
// the two stores' user directories are byte-identical.
func TestReplicaSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	primaryRoot, backupRoot := t.TempDir(), t.TempDir()
	const users = 3
	baddr := reserveAddr(t)

	newBackup := func() *Adapter {
		a, err := NewWithOptions(backupRoot, Options{
			Users:         users,
			Seed:          2,
			SyncOnDeliver: true,
			SyncDirs:      true,
			Replica:       &ReplicaOptions{ListenAddr: baddr},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	backup := newBackup()

	reg := obs.NewRegistry()
	primary, err := NewWithOptions(primaryRoot, Options{
		Users:         users,
		Seed:          1,
		SyncOnDeliver: true,
		SyncDirs:      true,
		Metrics:       reg,
		Replica: &ReplicaOptions{
			Primary:      true,
			PeerAddr:     baddr,
			CallTimeout:  time.Second,
			PingEvery:    25 * time.Millisecond,
			RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	closePrimary := sync.OnceFunc(primary.Close)
	defer closePrimary()

	srv := smtp.NewServer(primary, users)
	srv.ReadTimeout = 10 * time.Second
	srv.WriteTimeout = 10 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	var mu sync.Mutex
	acked := map[string]bool{}
	ackN := 0

	// traffic runs one SMTP client delivering msgs sequential messages,
	// recording wire-level 250s — the moment a loss becomes a violation.
	traffic := func(tag string, clients, msgs int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(30 * time.Second))
				r := bufio.NewReader(conn)
				step := func(send, want string) bool {
					if send != "" {
						if _, err := fmt.Fprintf(conn, "%s\r\n", send); err != nil {
							return false
						}
					}
					resp, err := r.ReadString('\n')
					return err == nil && strings.HasPrefix(resp, want)
				}
				if !step("", "220") {
					return
				}
				for m := 0; m < msgs; m++ {
					body := fmt.Sprintf("%s-client-%d-msg-%d", tag, c, m)
					user := (c + m) % users
					if !step("MAIL FROM:<x@y>", "250") ||
						!step(fmt.Sprintf("RCPT TO:<user%d@z>", user), "250") ||
						!step("DATA", "354") {
						return
					}
					if _, err := fmt.Fprintf(conn, "%s\r\n.\r\n", body); err != nil {
						return
					}
					resp, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if strings.HasPrefix(resp, "250") {
						mu.Lock()
						acked[body+"\n"] = true
						ackN++
						mu.Unlock()
					}
					// 451 is fine: not acknowledged, no obligation.
				}
			}(c)
		}
		wg.Wait()
	}

	// Phase 1: healthy pair under concurrent load.
	traffic("steady", 6, 5)
	mu.Lock()
	if ackN == 0 {
		mu.Unlock()
		t.Fatal("healthy phase acked nothing; the soak exercised nothing")
	}
	mu.Unlock()

	// Phase 2: partition the replication link mid-load. Calls are
	// dropped before the wire (Lost → OpFailed → 451): clients see
	// transient failures, never a lost ack. Heal and verify recovery.
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		traffic("partition", 4, 6)
	}()
	time.Sleep(20 * time.Millisecond)
	primary.ReplTransport().Partition(true)
	time.Sleep(100 * time.Millisecond)
	primary.ReplTransport().Partition(false)
	pwg.Wait()
	traffic("post-heal", 3, 4)

	// Phase 3: kill the backup mid-load — listener and live
	// connections both go down. The primary's failure detector latches
	// (refused dials), and it continues alone: acks must keep flowing.
	var kwg sync.WaitGroup
	kwg.Add(1)
	go func() {
		defer kwg.Done()
		traffic("kill", 4, 6)
	}()
	time.Sleep(20 * time.Millisecond)
	backup.Close()
	kwg.Wait()
	traffic("alone", 3, 4)
	mu.Lock()
	aloneAcked := false
	for body := range acked {
		if strings.HasPrefix(body, "alone-") {
			aloneAcked = true
			break
		}
	}
	mu.Unlock()
	if !aloneAcked {
		t.Fatal("primary refused all traffic with the backup dead; ack-alone failover did not engage")
	}

	// Phase 4: restart the backup on the same store and address. The
	// pinger re-admits it (a successful dial heals the dead verdict)
	// and the next replicated operation trips the sequence gap into a
	// catch-up resync. Drive probe deliveries until the pair reports
	// in-sync: same epoch, not resyncing, peer reachable.
	backup = newBackup()
	closeBackup := sync.OnceFunc(backup.Close)
	defer closeBackup()
	deadline := time.Now().Add(15 * time.Second)
	for {
		// Adapter-level delivery: the stored contents are the exact
		// bytes (no SMTP line ending), so record them verbatim.
		body := fmt.Sprintf("probe-%d", time.Now().UnixNano())
		if err := primary.Deliver(0, []byte(body)); err == nil {
			mu.Lock()
			acked[body] = true
			mu.Unlock()
		}
		pst, bst := primary.ReplNode().Status(), backup.ReplNode().Status()
		h := primary.ReplHealth()
		if pst.Epoch == bst.Epoch && !pst.Resyncing && !bst.Resyncing &&
			h.PeerReachable && !h.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair never resynced: primary %+v backup %+v health %+v", pst, bst, h)
		}
		time.Sleep(25 * time.Millisecond)
	}
	traffic("resynced", 4, 4)

	// Audit 1: zero acked loss — every wire-acked message is served by
	// the primary.
	present := map[string]bool{}
	total := 0
	for u := uint64(0); u < users; u++ {
		msgs, err := primary.Pickup(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			present[m.Contents] = true
		}
		total += len(msgs)
		primary.Unlock(u)
	}
	mu.Lock()
	t.Logf("replica soak: %d acked, %d on primary", len(acked), total)
	for body := range acked {
		if !present[body] {
			t.Errorf("acknowledged message lost: %q", strings.TrimSpace(body))
		}
	}
	mu.Unlock()

	// Audit 2: byte-identical stores. Quiesce both nodes, then compare
	// every user directory file for file across the two roots.
	closePrimary()
	closeBackup()
	for u := uint64(0); u < users; u++ {
		dir := mailboat.UserDir(u)
		pfiles := readDirMap(t, filepath.Join(primaryRoot, dir))
		bfiles := readDirMap(t, filepath.Join(backupRoot, dir))
		if len(pfiles) != len(bfiles) {
			t.Errorf("user %d: %d files on primary vs %d on backup", u, len(pfiles), len(bfiles))
		}
		for name, pc := range pfiles {
			bc, ok := bfiles[name]
			if !ok {
				t.Errorf("user %d: %s missing on backup", u, name)
				continue
			}
			if pc != bc {
				t.Errorf("user %d: %s differs between replicas", u, name)
			}
		}
	}
}

// readDirMap reads every file in dir into name → contents.
func readDirMap(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}
