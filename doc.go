// Package repro is a Go reproduction of "Verifying concurrent,
// crash-safe systems with Perennial" (Chajed, Tassarotti, Kaashoek,
// Zeldovich; SOSP 2019).
//
// The paper's deductive Coq/Iris framework is reproduced as an
// executable one: a modeled Goose machine (internal/machine,
// internal/disk, internal/gfs), a capability runtime enforcing the
// Perennial logic's ghost rules (internal/core), a transition-system
// specification language (internal/tsl, internal/spec), and a stateless
// model checker that checks concurrent recovery refinement over every
// interleaving and crash point in a bounded space (internal/explore,
// internal/history). On top sit the paper's artifacts: the
// replicated-disk, shadow-copy, write-ahead-log, and group-commit
// examples (internal/examples/...), the Mailboat mail server with SMTP
// and POP3 front ends (internal/mailboat, internal/smtp,
// internal/pop3), the GoMail and simulated-CMAIL baselines
// (internal/gomail, internal/cmail), the postal/rabid-style workload
// generator (internal/postal), and the Goose subset checker/translator
// (internal/goose).
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
