package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: what
// each mechanism buys, measured.
//
//	BenchmarkAblationCheckerMemo     — memoized vs. plain backtracking
//	                                   refinement checking
//	BenchmarkAblationRandPolicy      — deterministic fresh-name policy
//	                                   vs. searching over random names
//	BenchmarkAblationSearchStrategy  — systematic DFS vs. randomized
//	                                   stress, time to find a seeded bug

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/mailboat"
	"repro/internal/spec"
)

// crossHistory builds a maximally contended, unsatisfiable history:
// n+1 overlapping deliveries into a mailbox with only n free IDs. The
// checker must exhaust the whole interleaving space to reject it, which
// is where memoization pays off (identical mailbox states reached in
// different orders collapse).
func crossHistory(n int) (spec.Interface, history.History) {
	sp := mailboat.Spec(mailboat.Config{Users: 1, RandBound: uint64(n)})
	var h history.History
	for i := 0; i <= n; i++ {
		h = append(h, history.Event{Kind: history.Invoke, ID: history.OpID(i),
			Op: mailboat.OpDeliver{User: 0, Msg: "m"}})
	}
	for i := 0; i <= n; i++ {
		h = append(h, history.Event{Kind: history.Return, ID: history.OpID(i),
			Op: mailboat.OpDeliver{User: 0, Msg: "m"}, Ret: true})
	}
	return sp, h
}

// BenchmarkAblationCheckerMemo compares the refinement checker with and
// without search-state memoization on a contended history.
func BenchmarkAblationCheckerMemo(b *testing.B) {
	sp, h := crossHistory(4)
	for _, cfg := range []struct {
		name string
		opts history.Options
	}{
		{"memoized", history.Options{}},
		{"no-memo", history.Options{DisableMemo: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var res history.Result
			for i := 0; i < b.N; i++ {
				res = history.CheckWith(sp, h, cfg.opts)
				if res.OK {
					b.Fatal("over-full mailbox history accepted")
				}
			}
			b.ReportMetric(float64(res.StatesExplored), "states")
		})
	}
}

// BenchmarkAblationRandPolicy compares the systematic search-space size
// for Mailboat with the deterministic fresh-name policy (the default)
// against searching over every random name choice.
func BenchmarkAblationRandPolicy(b *testing.B) {
	mk := func() *explore.Scenario {
		return mailboat.Scenario("ablation-rand", mailboat.VariantVerified, mailboat.ScenarioOptions{
			Config:      mailboat.Config{Users: 1, RandBound: 2},
			Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "m"}},
			PostPickups: true,
		})
	}
	b.Run("fresh-name-policy", func(b *testing.B) {
		var rep *explore.Report
		for i := 0; i < b.N; i++ {
			rep = explore.Run(mk(), explore.Options{MaxExecutions: 100000})
			if !rep.OK() || !rep.Complete {
				b.Fatalf("rep=%v", rep)
			}
		}
		b.ReportMetric(float64(rep.Executions), "executions")
	})
	b.Run("search-over-rand", func(b *testing.B) {
		var rep *explore.Report
		for i := 0; i < b.N; i++ {
			s := mk()
			s.RandPolicy = nil // every random name becomes a search branch
			rep = explore.Run(s, explore.Options{MaxExecutions: 100000})
			if !rep.OK() {
				b.Fatalf("rep=%v", rep)
			}
		}
		b.ReportMetric(float64(rep.Executions), "executions")
	})
}

// BenchmarkAblationSearchStrategy compares systematic DFS against pure
// randomized stress on a seeded bug (the zeroing recovery), reporting
// executions until the counterexample.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	mk := func() *explore.Scenario {
		return mailboat.Scenario("ablation-strategy", mailboat.VariantRecoverWipes, mailboat.ScenarioOptions{
			Config:      mailboat.Config{Users: 1, RandBound: 3},
			Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "keep"}, {User: 0, Msg: "also"}},
			MaxCrashes:  1,
			PostPickups: true,
		})
	}
	b.Run("systematic-dfs", func(b *testing.B) {
		var rep *explore.Report
		for i := 0; i < b.N; i++ {
			rep = explore.Run(mk(), explore.Options{MaxExecutions: 100000})
			if rep.OK() {
				b.Fatal("bug not found")
			}
		}
		b.ReportMetric(float64(rep.Executions), "executions-to-bug")
	})
	b.Run("randomized-stress", func(b *testing.B) {
		var rep *explore.Report
		for i := 0; i < b.N; i++ {
			rep = explore.Run(mk(), explore.Options{
				MaxExecutions:    1, // effectively stress-only
				StressExecutions: 100000,
				StressSeed:       int64(i + 1),
			})
			if rep.OK() {
				b.Fatal("bug not found under stress")
			}
		}
		b.ReportMetric(float64(rep.Executions), "executions-to-bug")
	})
}
