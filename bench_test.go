package repro

// This file regenerates the paper's evaluation tables and figures as Go
// benchmarks — run `go test -bench=. -benchmem` and compare against the
// paper numbers recorded in EXPERIMENTS.md.
//
//	BenchmarkTable1CapabilityRules — the Table 1 ghost rules, executable
//	BenchmarkTable2LoC             — Perennial + Goose lines of code
//	BenchmarkTable3PatternCheck    — the four crash-safety patterns,
//	                                 checked exhaustively (and their LoC
//	                                 via BenchmarkTable3LoC)
//	BenchmarkTable4LoC             — Mailboat vs CMAIL effort
//	BenchmarkFig11Throughput       — mail-server throughput vs cores
//	BenchmarkBugHunt               — §9.5-style seeded bugs, time to find

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/loc"
	"repro/internal/machine"
	"repro/internal/postal"
	"repro/internal/suite"
)

// BenchmarkTable1CapabilityRules measures the cost of the executable
// Table 1 rules: a full lease lifecycle (allocate, deposit, update,
// crash, resynthesize) per iteration. Table 1 itself is a rule summary,
// so the "reproduction" is that every rule runs and is enforced.
func BenchmarkTable1CapabilityRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.New(machine.Options{})
		c := core.NewCtx(m)
		var ms *core.Master
		res := m.RunEra(machine.SeqChooser{}, false, func(t *machine.T) {
			var ls *core.Lease
			ms, ls = c.NewDurable(t, "d[0]", uint64(0))
			c.DepositMaster(t, ms)
			c.Update(t, ms, ls, uint64(1), nil)
		})
		if res.Outcome != machine.Done {
			b.Fatal(res.Err)
		}
		m.CrashReset()
		res = m.RunEra(machine.SeqChooser{}, false, func(t *machine.T) {
			ms2, ls2 := ms.Resynthesize(t)
			c.Update(t, ms2, ls2, uint64(2), nil)
		})
		if res.Outcome != machine.Done {
			b.Fatal(res.Err)
		}
	}
}

func reportLoC(b *testing.B, rows []loc.Row) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(float64(r.Measured), "loc:"+sanitize(r.Name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '-', r == '(', r == ')':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable2LoC regenerates Table 2 (Perennial and Goose lines of
// code) from this repository.
func BenchmarkTable2LoC(b *testing.B) {
	var rows []loc.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = loc.Table2(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLoC(b, rows)
	b.Logf("\n%s", loc.FormatTable("Table 2", rows))
}

// BenchmarkTable3LoC regenerates Table 3's line counts.
func BenchmarkTable3LoC(b *testing.B) {
	var rows []loc.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = loc.Table3(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLoC(b, rows)
	b.Logf("\n%s", loc.FormatTable("Table 3", rows))
}

// BenchmarkTable3PatternCheck runs each crash-safety pattern's
// exhaustive model-checking scenario — the executable content behind
// Table 3 (§9.1: "Can Perennial be used to verify a variety of
// crash-safety patterns?").
func BenchmarkTable3PatternCheck(b *testing.B) {
	for _, e := range suite.Verified() {
		e := e
		b.Run(e.Scenario.Name, func(b *testing.B) {
			var rep *explore.Report
			for i := 0; i < b.N; i++ {
				rep = explore.Run(e.Scenario, e.Opts)
				if !rep.OK() {
					b.Fatalf("violation:\n%s", rep.Counterexample.Format())
				}
			}
			b.ReportMetric(float64(rep.Executions), "executions")
			b.ReportMetric(float64(rep.CheckedStates), "checker-states")
		})
	}
}

// BenchmarkTable4LoC regenerates Table 4 (Mailboat vs CMAIL effort).
func BenchmarkTable4LoC(b *testing.B) {
	var rows []loc.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = loc.Table4(".")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLoC(b, rows)
	b.Logf("\n%s", loc.FormatTable("Table 4", rows))
}

// BenchmarkFig11Throughput regenerates Figure 11: for each mail server
// and core count, the closed-loop mixed workload's throughput on a
// RAM-backed store. The req/s metric is the figure's y-axis.
func BenchmarkFig11Throughput(b *testing.B) {
	cores := []int{1, 2, 4}
	if n := runtime.NumCPU(); n >= 8 {
		cores = append(cores, 8)
	}
	if n := runtime.NumCPU(); n >= 12 {
		cores = append(cores, 12)
	}
	for _, server := range []string{"mailboat", "gomail", "cmail"} {
		for _, c := range cores {
			if c > runtime.NumCPU() {
				continue
			}
			name := fmt.Sprintf("%s/cores=%d", server, c)
			b.Run(name, func(b *testing.B) {
				prev := runtime.GOMAXPROCS(c)
				defer runtime.GOMAXPROCS(prev)
				var last postal.Result
				for i := 0; i < b.N; i++ {
					// Fast mode: the paper's method ran Mailboat without
					// durability barriers, and the longitudinal series
					// must keep measuring the same thing.
					back, cleanup, err := postal.NewFastBackend(server, postal.RAMDir(), 100, c, 7)
					if err != nil {
						b.Fatal(err)
					}
					last = postal.Run(back, postal.Options{
						Workers:       c,
						Users:         100,
						TotalRequests: 6000,
						Seed:          7,
					})
					cleanup()
					if last.BadHashes > 0 || last.Errors > 0 {
						b.Fatalf("workload errors: %s", last)
					}
				}
				b.ReportMetric(last.Throughput, "req/s")
			})
		}
	}
}

// BenchmarkBugHunt measures how quickly the checker finds each seeded
// bug (the §9.5 discussion, mechanized): executions-to-counterexample.
func BenchmarkBugHunt(b *testing.B) {
	for _, e := range suite.Bugs() {
		e := e
		b.Run(e.Scenario.Name, func(b *testing.B) {
			var rep *explore.Report
			for i := 0; i < b.N; i++ {
				rep = explore.Run(e.Scenario, e.Opts)
				if rep.OK() {
					b.Fatal("seeded bug not found")
				}
			}
			b.ReportMetric(float64(rep.Executions), "executions-to-bug")
		})
	}
}
