// Layered crash safety: a key-value store on top of the transactional
// journal on top of the disk. The model checker verifies the composed
// stack end-to-end against the KV specification — and finds the torn
// two-transaction put when the layering is misused.
package main

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/kvstore"
	"repro/internal/machine"
	"repro/internal/spec"
)

type world struct {
	d *disk.Disk
	s *kvstore.Store
}

func scenario(name string, torn bool) *explore.Scenario {
	const caps = 2
	sp := kvstore.Spec(caps)
	return &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  1,
		Setup: func(m *machine.Machine) any {
			return &world{d: disk.New(m, "kv", kvstore.DiskBlocks(caps), false)}
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.s = kvstore.New(t, w.d, caps)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			t.Go(func(c *machine.T) {
				h.Op(kvstore.OpPut{K: 0, V: 7}, func() spec.Ret {
					if torn {
						w.s.PutNoTxn(c, 0, 7)
					} else {
						w.s.Put(c, 0, 7)
					}
					return nil
				})
			})
			t.Go(func(c *machine.T) {
				h.Op(kvstore.OpGet{K: 0}, func() spec.Ret { return w.s.Get(c, 0) })
			})
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.s = kvstore.Recover(t, w.s)
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			h.Op(kvstore.OpGet{K: 0}, func() spec.Ret { return w.s.Get(t, 0) })
		},
	}
}

func main() {
	fmt.Println("== KV store over journal over disk: put ∥ get, crash anywhere ==")
	rep := explore.Run(scenario("kv", false), explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if !rep.OK() {
		fmt.Println(rep.Counterexample.Format())
		return
	}

	fmt.Println("\n== misusing the layer: presence and value in separate transactions ==")
	rep = explore.Run(scenario("kv-torn", true), explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if rep.OK() {
		fmt.Println("unexpected: torn put not found")
		return
	}
	fmt.Println("\ncounterexample (as expected):")
	fmt.Println(rep.Counterexample.Format())
}
