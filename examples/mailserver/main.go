// A self-contained Mailboat deployment (§8.2): boot the verified
// library on a temporary directory, serve SMTP and POP3 on loopback,
// deliver two messages over SMTP, read them back over POP3, delete one,
// then "crash" and recover to show delivered mail survives.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"repro/internal/mailboatd"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

func main() {
	dir, err := os.MkdirTemp("", "mailboat-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	adapter, err := mailboatd.New(dir, 4, 1)
	if err != nil {
		log.Fatal(err)
	}

	smtpLn := listen()
	popLn := listen()
	go smtp.NewServer(adapter, 4).Serve(smtpLn)
	go pop3.NewServer(adapter, 4).Serve(popLn)
	fmt.Printf("SMTP on %s, POP3 on %s, store in %s\n\n", smtpLn.Addr(), popLn.Addr(), dir)

	// Deliver two messages over SMTP.
	fmt.Println("== delivering two messages to user1 over SMTP ==")
	c := dialOrDie(smtpLn.Addr().String())
	c.expect("220")
	for i, body := range []string{"first message", "second message"} {
		c.send("MAIL FROM:<demo@example.org>")
		c.expect("250")
		c.send("RCPT TO:<user1@example.org>")
		c.expect("250")
		c.send("DATA")
		c.expect("354")
		c.send(fmt.Sprintf("Subject: demo %d\r\n\r\n%s\r\n.", i+1, body))
		c.expect("250")
	}
	c.send("QUIT")
	c.expect("221")

	// Read them back over POP3 and delete the first.
	fmt.Println("\n== reading them back over POP3 ==")
	p := dialOrDie(popLn.Addr().String())
	p.expect("+OK")
	p.send("USER user1")
	p.expect("+OK")
	p.send("PASS anything")
	fmt.Println("  " + p.expect("+OK"))
	p.send("RETR 1")
	p.expect("+OK")
	for _, line := range p.multiline() {
		fmt.Println("  | " + line)
	}
	p.send("DELE 1")
	p.expect("+OK")
	p.send("QUIT")
	p.expect("+OK")

	// Crash and recover: the remaining message must survive.
	fmt.Println("\n== simulated crash + recovery (new process over the same store) ==")
	adapter.Close()
	adapter2, err := mailboatd.New(dir, 4, 2) // New always runs Recover
	if err != nil {
		log.Fatal(err)
	}
	defer adapter2.Close()
	msgs, err := adapter2.Pickup(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery, user1 has %d message(s):\n", len(msgs))
	for _, m := range msgs {
		fmt.Printf("  %s: %q\n", m.ID, firstLine(m.Contents))
	}
	adapter2.Unlock(1)
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

type lineClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialOrDie(addr string) *lineClient {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return &lineClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *lineClient) send(line string) {
	fmt.Fprintf(c.conn, "%s\r\n", line)
}

func (c *lineClient) expect(prefix string) string {
	line, err := c.r.ReadString('\n')
	if err != nil {
		log.Fatalf("expected %q, got error %v", prefix, err)
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, prefix) {
		log.Fatalf("expected %q, got %q", prefix, line)
	}
	return line
}

func (c *lineClient) multiline() []string {
	var lines []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			return lines
		}
		lines = append(lines, strings.TrimPrefix(line, "."))
	}
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
