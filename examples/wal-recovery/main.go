// Write-ahead logging and group commit (§9.1), with a hand-driven crash
// in the committed-but-unapplied window to show recovery helping (§5.4)
// in action: the transaction's spec step is performed by recovery on
// behalf of the crashed thread.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/examples/groupcommit"
	"repro/internal/examples/wal"
	"repro/internal/explore"
	"repro/internal/machine"
)

func main() {
	fmt.Println("== exhaustive check: WAL transaction with crashes (incl. during recovery) ==")
	s := wal.Scenario("wal", wal.VariantVerified, wal.ScenarioOptions{
		Writers:    []wal.OpWrite{{V1: 7, V2: 8}},
		MaxCrashes: 2,
		PostReads:  1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if !rep.OK() {
		fmt.Println(rep.Counterexample.Format())
		return
	}

	fmt.Println("\n== hand-driven helping window ==")
	demoHelpingWindow()

	fmt.Println("\n== exhaustive check: group commit (buffered writes may be lost, flushed may not) ==")
	g := groupcommit.Scenario("group-commit", groupcommit.VariantVerified, groupcommit.ScenarioOptions{
		Steps: []groupcommit.Step{
			{Write: &groupcommit.OpWrite{V1: 1, V2: 2}},
			{Flush: true},
		},
		MaxCrashes: 1,
		PostReads:  1,
	})
	rep = explore.Run(g, explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if !rep.OK() {
		fmt.Println(rep.Counterexample.Format())
	}
}

// demoHelpingWindow runs one transaction, kills the machine right after
// the commit write (before the data blocks are updated), and lets
// recovery complete it, printing the ghost state along the way.
func demoHelpingWindow() {
	m := machine.New(machine.Options{TraceDepth: 40})
	d := disk.New(m, "d", wal.DiskSize, false)
	g := core.NewCtx(m)
	sp := wal.Spec()
	g.InitSim(sp, sp.Init())

	var w *wal.WAL
	m.RunEra(machine.SeqChooser{}, false, func(t *machine.T) {
		w = wal.New(t, g, d)
	})

	// The writer's steps: acquire, log1, log2, commit-flag, data1,
	// data2, clear-flag, release. Crash right after the commit write:
	// run 5 steps, then crash (the last option).
	steps := 0
	ch := machine.ChooserFunc(func(n int, tag string) int {
		if tag != "sched" {
			return 0
		}
		steps++
		if steps > 5 {
			return n - 1 // crash
		}
		return 0
	})
	res := m.RunEra(ch, true, func(t *machine.T) {
		j := g.NewJTok(wal.OpWrite{V1: 7, V2: 8})
		w.WritePair(t, j, 7, 8)
		g.FinishOp(t, j, nil)
	})
	fmt.Printf("writer era: %v (crashed in the committed window)\n", res.Outcome)
	fmt.Printf("  disk: flag=%d log=(%d,%d) data=(%d,%d)\n",
		d.Peek(0), d.Peek(1), d.Peek(2), d.Peek(3), d.Peek(4))
	fmt.Printf("  helping tokens deposited: %d\n", len(g.HelpingTokens()))
	fmt.Printf("  spec source state before recovery: %+v\n", g.Source())

	m.CrashReset()
	res = m.RunEra(machine.SeqChooser{}, false, func(t *machine.T) {
		w = wal.Recover(t, w)
	})
	fmt.Printf("recovery era: %v\n", res.Outcome)
	fmt.Printf("  disk: flag=%d data=(%d,%d)\n", d.Peek(0), d.Peek(3), d.Peek(4))
	fmt.Printf("  spec source state after helping + crash step: %+v\n", g.Source())
	fmt.Printf("  helping tokens remaining: %d\n", len(g.HelpingTokens()))
}
