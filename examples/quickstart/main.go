// Quickstart: define a specification, write a concurrent crash-safe
// implementation against the modeled machine, and check concurrent
// recovery refinement with the explorer — the whole Perennial workflow
// (Figure 2) in one file.
//
// The system is a durable counter stored in a disk block: Incr adds one
// under a lock, Get reads it. The spec says both are atomic and the
// counter survives crashes. A buggy variant (read-increment-write
// without the lock) is checked too, to show what a counterexample looks
// like.
package main

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// --- 1. The specification: a transition system (§3.1) ---

type counterState struct{ N uint64 }

type opIncr struct{}

func (opIncr) String() string { return "incr()" }

type opGet struct{}

func (opGet) String() string { return "get()" }

func counterSpec() spec.Interface {
	return &spec.TSL[counterState]{
		SpecName: "durable-counter",
		Initial:  counterState{},
		OpTransition: func(op spec.Op) tsl.Transition[counterState, spec.Ret] {
			switch op.(type) {
			case opIncr:
				return tsl.Then(
					tsl.Modify(func(s counterState) counterState { return counterState{N: s.N + 1} }),
					tsl.Ret[counterState, spec.Ret](nil))
			case opGet:
				return tsl.Gets(func(s counterState) spec.Ret { return s.N })
			default:
				panic("unknown op")
			}
		},
		// crash transition: identity — completed increments are durable.
	}
}

// --- 2. The implementation, on the modeled machine (§6) ---

type counter struct {
	d    *disk.Disk
	lock *machine.Lock
}

func boot(t *machine.T, d *disk.Disk) *counter {
	return &counter{d: d, lock: machine.NewLock(t, "counter")}
}

func (c *counter) incr(t *machine.T) {
	c.lock.Acquire(t)
	v, _ := c.d.Read(t, 0)
	c.d.Write(t, 0, v+1) // a single atomic block write: crash-safe
	c.lock.Release(t)
}

func (c *counter) get(t *machine.T) uint64 {
	c.lock.Acquire(t)
	v, _ := c.d.Read(t, 0)
	c.lock.Release(t)
	return v
}

// incrRacy forgets the lock: two concurrent increments can read the
// same value and lose one update.
func (c *counter) incrRacy(t *machine.T) {
	v, _ := c.d.Read(t, 0)
	c.d.Write(t, 0, v+1)
}

// --- 3. The checkable scenario and the exploration (§5 / Theorem 2) ---

type world struct {
	d *disk.Disk
	c *counter
}

func scenario(name string, racy bool) *explore.Scenario {
	sp := counterSpec()
	return &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 2000},
		MaxCrashes:  1,
		Setup: func(m *machine.Machine) any {
			return &world{d: disk.New(m, "d", 1, false)}
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.c = boot(t, w.d)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			for i := 0; i < 2; i++ {
				t.Go(func(c *machine.T) {
					h.Op(opIncr{}, func() spec.Ret {
						if racy {
							w.c.incrRacy(c)
						} else {
							w.c.incr(c)
						}
						return nil
					})
				})
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.c = boot(t, w.d) // nothing to repair: the block write is atomic
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			h.Op(opGet{}, func() spec.Ret { return w.c.get(t) })
		},
	}
}

func main() {
	fmt.Println("== checking the locked counter (all interleavings + crash points) ==")
	rep := explore.Run(scenario("counter", false), explore.Options{MaxExecutions: 50000})
	fmt.Println(rep)
	if !rep.OK() {
		fmt.Println(rep.Counterexample.Format())
		return
	}

	fmt.Println("\n== checking the racy counter (a lost update must be found) ==")
	rep = explore.Run(scenario("counter-racy", true), explore.Options{MaxExecutions: 50000})
	fmt.Println(rep)
	if rep.OK() {
		fmt.Println("unexpected: no bug found")
		return
	}
	fmt.Println("\ncounterexample (as expected):")
	fmt.Println(rep.Counterexample.Format())
}
