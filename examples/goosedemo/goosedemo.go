// Package goosedemo is a self-contained package inside the Goose subset
// (§6): uint64s, slices, structs, pointers, per-object locks, and
// goroutines — no interfaces, no first-class functions, no channels, no
// defer, no floating point. Run the translator on it:
//
//	go run ./cmd/goose examples/goosedemo
package goosedemo

import "sync"

// MaxAccounts bounds the bank size.
const MaxAccounts = 64

// Bank is a set of accounts protected by one lock.
type Bank struct {
	mu       *sync.Mutex
	balances []uint64
}

// NewBank allocates a bank with n zero accounts.
func NewBank(n uint64) *Bank {
	b := &Bank{}
	b.mu = new(sync.Mutex)
	b.balances = make([]uint64, n)
	return b
}

// Deposit adds amt to account a.
func (b *Bank) Deposit(a uint64, amt uint64) {
	b.mu.Lock()
	b.balances[a] = b.balances[a] + amt
	b.mu.Unlock()
}

// Transfer moves amt from one account to another, atomically; it
// reports whether the source had sufficient funds.
func (b *Bank) Transfer(from uint64, to uint64, amt uint64) bool {
	b.mu.Lock()
	ok := false
	if b.balances[from] >= amt {
		b.balances[from] = b.balances[from] - amt
		b.balances[to] = b.balances[to] + amt
		ok = true
	}
	b.mu.Unlock()
	return ok
}

// Sum returns the total balance across accounts.
func (b *Bank) Sum() uint64 {
	b.mu.Lock()
	var total uint64
	for i := uint64(0); i < uint64(len(b.balances)); i++ {
		total = total + b.balances[i]
	}
	b.mu.Unlock()
	return total
}

// DepositAll spawns one goroutine per account depositing amt, the
// Goose-style use of goroutines.
func DepositAll(b *Bank, amt uint64) {
	for i := uint64(0); i < uint64(len(b.balances)); i++ {
		a := i
		go func() {
			b.Deposit(a, amt)
		}()
	}
}
