// The paper's running example (Figures 1, 3–6) end to end: check the
// verified replicated-disk library under every interleaving, crash
// point, and disk-1 failure; then demonstrate the two wrong designs the
// introduction warns about — skipping recovery, and "recovering" by
// zeroing the disks — each with a concrete counterexample trace.
package main

import (
	"fmt"

	"repro/internal/examples/replicateddisk"
	"repro/internal/explore"
	"repro/internal/history"
)

func main() {
	figure6()

	fmt.Println("\n== verified replicated disk: two writers, one crash, failover reads ==")
	verified := replicateddisk.Verified("replicated-disk", replicateddisk.ScenarioOptions{
		Size:       1,
		Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		D1MayFail:  true,
		MaxCrashes: 1,
		PostReads:  []uint64{0, 0},
	})
	rep := explore.Run(verified, explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if !rep.OK() {
		fmt.Println(rep.Counterexample.Format())
		return
	}

	fmt.Println("\n== §3.1's motivating bug: reboot without running recovery ==")
	fmt.Println("   (a crash between the two disk writes leaves the disks out of")
	fmt.Println("   sync; when disk 1 later fails, reads fall back to stale data)")
	noRecovery := replicateddisk.BugNoRecovery("no-recovery", replicateddisk.ScenarioOptions{
		Size:       1,
		Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}},
		D1MayFail:  true,
		MaxCrashes: 1,
		PostReads:  []uint64{0, 0},
	})
	rep = explore.Run(noRecovery, explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if rep.OK() {
		fmt.Println("unexpected: bug not found")
		return
	}
	fmt.Println(rep.Counterexample.Format())

	fmt.Println("== §1's wrong recovery: make the disks consistent by zeroing both ==")
	zeroing := replicateddisk.BugZeroingRecovery("zeroing-recovery", replicateddisk.ScenarioOptions{
		Size:       1,
		Writers:    []replicateddisk.OpWrite{{A: 0, V: 1}, {A: 0, V: 2}},
		MaxCrashes: 1,
		PostReads:  []uint64{0},
	})
	rep = explore.Run(zeroing, explore.Options{MaxExecutions: 100000})
	fmt.Println(rep)
	if rep.OK() {
		fmt.Println("unexpected: bug not found")
		return
	}
	fmt.Println(rep.Counterexample.Format())
}

// figure6 reconstructs the paper's Figure 6: an execution where
// rd_write crashes between its two disk writes, recovery completes it
// (helping), and a later read observes the helped value. The witness
// shows exactly which spec transition each effect maps to.
func figure6() {
	fmt.Println("== Figure 6: refinement diagram for a crash in the middle of rd_write ==")
	h := history.History{
		{Kind: history.Invoke, ID: 0, Op: replicateddisk.OpWrite{A: 0, V: 1}},
		{Kind: history.Crash},
		{Kind: history.Invoke, ID: 1, Op: replicateddisk.OpRead{A: 0}},
		{Kind: history.Return, ID: 1, Op: replicateddisk.OpRead{A: 0}, Ret: uint64(1)},
	}
	w, ok := history.Witness(replicateddisk.Spec(1), h)
	if !ok {
		fmt.Println("unexpected: no witness")
		return
	}
	fmt.Print(history.FormatWitness(h, w))
}
