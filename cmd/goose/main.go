// goose checks a Go package against the Goose subset (§6) and, when it
// conforms, translates it into its Coq-flavoured Perennial model (§7).
//
// Usage:
//
//	goose [-check-only] <package-dir>
//
// Diagnostics go to stderr; the translated model goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/goose"
)

func main() {
	checkOnly := flag.Bool("check-only", false, "report subset violations without translating")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: goose [-check-only] <package-dir>")
		os.Exit(2)
	}
	pkg, err := goose.LoadDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "goose: %v\n", err)
		os.Exit(1)
	}
	diags := goose.Check(pkg)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Fprintf(os.Stderr, "goose: %s is within the Goose subset\n", flag.Arg(0))
		return
	}
	out, err := goose.Translate(pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goose: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
