// mailboat runs the verified mail server with its SMTP and POP3 front
// ends over a real directory (§8.2's deployment). On startup it runs
// Recover, so restarting after a crash is always safe; on SIGINT or
// SIGTERM it drains in-flight sessions (bounded by -grace) before
// exiting.
//
// Usage:
//
//	mailboat [-dir path] [-users N] [-smtp addr] [-pop3 addr]
//	         [-max-conns N] [-timeout d] [-grace d] [-sync]
//	         [-retries N] [-backoff d]
//	         [-fault-seed N] [-fault-rate N] [-fault-max N]
//
// Deliver mail to userN@any-domain over SMTP; read it back by
// authenticating as userN over POP3 (any password).
//
// The -fault-* flags run the server in fault-drill mode: a
// deterministic gfs.Faulty layer injects transient file-system faults
// (1 in -fault-rate calls per operation class) from -fault-seed's
// schedule. The same seed replays the same drill; the injected-fault
// log is printed on shutdown. Clients see SMTP 451 / POP3 -ERR
// [SYS/TEMP] for failures the retry layer cannot absorb — never lost
// acknowledged mail.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboatd"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

func main() {
	dir := flag.String("dir", "./mailboat-data", "mail store directory")
	users := flag.Uint64("users", 100, "number of user mailboxes")
	smtpAddr := flag.String("smtp", "127.0.0.1:2525", "SMTP listen address")
	popAddr := flag.String("pop3", "127.0.0.1:2110", "POP3 listen address")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections per listener (0 = unlimited)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-connection read/write deadline (0 = none)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period before force-closing sessions")
	syncDeliver := flag.Bool("sync", false, "fsync spool files before publishing (survives OS crashes)")
	retries := flag.Int("retries", 0, "delivery retry attempts on transient store failure (0 = default)")
	backoff := flag.Duration("backoff", 10*time.Millisecond, "base backoff between delivery retries")
	faultSeed := flag.Int64("fault-seed", 0, "fault-drill schedule seed")
	faultRate := flag.Uint64("fault-rate", 0, "inject a fault into 1 in N file-system calls (0 = drills off)")
	faultMax := flag.Uint64("fault-max", 0, "cap on total injected faults (0 = unlimited)")
	flag.Parse()

	opts := mailboatd.Options{
		Users:          *users,
		Seed:           time.Now().UnixNano(),
		SyncOnDeliver:  *syncDeliver,
		DeliverRetries: *retries,
		DeliverBackoff: *backoff,
	}
	if *faultRate > 0 {
		opts.Fault = &mailboatd.FaultOptions{
			Seed:      *faultSeed,
			Rates:     gfs.UniformRates(*faultRate),
			MaxFaults: *faultMax,
		}
	}
	adapter, err := mailboatd.NewWithOptions(*dir, opts)
	if err != nil {
		log.Fatalf("mailboat: %v", err)
	}
	defer adapter.Close()
	log.Printf("mailboat: store %s recovered, %d users", *dir, *users)
	if opts.Fault != nil {
		log.Printf("mailboat: FAULT DRILL active (seed %d, 1 in %d calls)", *faultSeed, *faultRate)
	}

	harden := func(read, write *time.Duration, conns *int) {
		*read = *timeout
		*write = *timeout
		*conns = *maxConns
	}
	errs := make(chan error, 2)
	ss := smtp.NewServer(adapter, *users)
	harden(&ss.ReadTimeout, &ss.WriteTimeout, &ss.MaxConns)
	go func() { errs <- ss.ListenAndServe(*smtpAddr) }()
	log.Printf("mailboat: SMTP on %s", *smtpAddr)

	ps := pop3.NewServer(adapter, *users)
	harden(&ps.ReadTimeout, &ps.WriteTimeout, &ps.MaxConns)
	go func() { errs <- ps.ListenAndServe(*popAddr) }()
	log.Printf("mailboat: POP3 on %s", *popAddr)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errs:
		if err != nil {
			log.Fatalf("mailboat: %v", err)
		}
		log.Fatal("mailboat: listener closed unexpectedly")
	case sig := <-sigs:
		log.Printf("mailboat: %v, draining (up to %v)", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := ss.Shutdown(ctx); err != nil {
			log.Printf("mailboat: smtp shutdown: %v", err)
		}
		if err := ps.Shutdown(ctx); err != nil {
			log.Printf("mailboat: pop3 shutdown: %v", err)
		}
		if fl := adapter.FaultLog(); fl != nil {
			log.Printf("mailboat: drill injected %d faults:", len(fl))
			for _, e := range fl {
				log.Printf("mailboat:   %s", e)
			}
		}
		log.Printf("mailboat: bye")
	}
}
