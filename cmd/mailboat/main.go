// mailboat runs the verified mail server with its SMTP and POP3 front
// ends over a real directory (§8.2's deployment). On startup it runs
// Recover, so restarting after a crash is always safe.
//
// Usage:
//
//	mailboat [-dir path] [-users N] [-smtp addr] [-pop3 addr]
//
// Deliver mail to userN@any-domain over SMTP; read it back by
// authenticating as userN over POP3 (any password).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/mailboatd"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

func main() {
	dir := flag.String("dir", "./mailboat-data", "mail store directory")
	users := flag.Uint64("users", 100, "number of user mailboxes")
	smtpAddr := flag.String("smtp", "127.0.0.1:2525", "SMTP listen address")
	popAddr := flag.String("pop3", "127.0.0.1:2110", "POP3 listen address")
	flag.Parse()

	adapter, err := mailboatd.New(*dir, *users, time.Now().UnixNano())
	if err != nil {
		log.Fatalf("mailboat: %v", err)
	}
	defer adapter.Close()
	log.Printf("mailboat: store %s recovered, %d users", *dir, *users)

	errs := make(chan error, 2)
	ss := smtp.NewServer(adapter, *users)
	go func() { errs <- fmt.Errorf("smtp: %w", ss.ListenAndServe(*smtpAddr)) }()
	log.Printf("mailboat: SMTP on %s", *smtpAddr)

	ps := pop3.NewServer(adapter, *users)
	go func() { errs <- fmt.Errorf("pop3: %w", ps.ListenAndServe(*popAddr)) }()
	log.Printf("mailboat: POP3 on %s", *popAddr)

	log.Fatal(<-errs)
}
