// mailboat runs the verified mail server with its SMTP and POP3 front
// ends over a real directory (§8.2's deployment). On startup it runs
// Recover, so restarting after a crash is always safe; on SIGINT or
// SIGTERM it drains in-flight sessions (bounded by -grace) before
// exiting.
//
// Usage:
//
//	mailboat [-dir path] [-mirror path] [-users N] [-smtp addr] [-pop3 addr]
//	         [-admin addr] [-max-conns N] [-timeout d] [-grace d] [-no-fsync]
//	         [-retries N] [-backoff d] [-checksum] [-scrub-interval d]
//	         [-quota N] [-max-inflight N] [-shed-low N] [-shed-high N]
//	         [-fault-seed N] [-fault-rate N] [-fault-max N]
//	         [-replica addr | -backup-of addr] [-repl-listen addr]
//
// Deliver mail to userN@any-domain over SMTP; read it back by
// authenticating as userN over POP3 (any password).
//
// By default the store runs the full checked sync discipline: spool
// files are fsynced before publishing AND the mailbox directory is
// fsynced before a delivery or delete is acknowledged, so an acked
// operation survives an OS crash on writeback file systems (ext4,
// xfs). -no-fsync skips every barrier for speed; its weaker contract —
// verified by the mb/writeback+prefix-contract checker scenario — is
// prefix durability: a crash may take back the NEWEST acked
// deliveries, but the surviving mailbox is always a hole-free prefix
// of the delivery order, never reordered or fabricated. The legacy
// -sync flag remains for compatibility (-sync=false behaves like
// -no-fsync).
//
// -admin starts an operational HTTP listener serving Prometheus-text
// /metrics (every layer: gfs_*, mailboat_*, mailboatd_*, smtp_*,
// pop3_*, trace_stage_seconds), /healthz and /version (JSON), request
// timelines on /traces and /traces/slow, and net/http/pprof under
// /debug/pprof/. Metrics are collected whether or not the listener is
// enabled; request tracing is only enabled with it (a nil tracer makes
// every span site a no-op).
//
// -mirror runs the store mirrored across two directories (put them on
// different disks): every write goes to both replicas, reads fail over
// if a replica dies, and a reboot resilvers a replaced replica from the
// survivor before serving. While degraded, /healthz answers 503 with
// the per-replica status as JSON. Mutually exclusive with -fault-rate.
//
// -checksum stores every file inside a checksummed envelope: reads that
// fail verification error out loudly instead of serving rot, and on a
// mirrored store rotten copies heal from the good replica on read, on
// boot, and on every scrub pass. -scrub-interval runs a background
// heal-scrub at that period (0 = off); POST /scrub on the admin
// listener runs one on demand, and /healthz answers 503 while the last
// scrub reports unhealed damage.
//
// -quota caps each mailbox's stored bytes: an over-quota delivery is
// refused up front with SMTP 452 (insufficient system storage) and the
// store untouched; deleting mail over POP3 credits the bytes back.
// Usage is re-derived from the store on every boot.
//
// -shed-low/-shed-high and -max-inflight are the overload-shedding
// policy: when the file system backing -dir drops below -shed-low free
// bytes (measured with statfs, cached), or more than -max-inflight
// deliveries are in flight, new deliveries are refused with SMTP 452
// instead of being raced into ENOSPC, and /healthz answers 503 with
// the shed snapshot so load balancers steer mail elsewhere. Shedding
// stops once free space rises above -shed-high (hysteresis; default
// 2x -shed-low). Reads (POP3) are never shed — mail already stored
// costs no new space to serve. The gfs_space_free_bytes and
// shed_deliveries_total metrics track the policy on /metrics.
//
// -replica and -backup-of run a primary/backup replicated pair — the
// same protocol the mb/repl checker scenarios verify, over a
// length-prefixed TCP transport. The primary (-replica pointing at the
// backup's -repl-listen address) serves clients and replicates every
// delivery and delete to the backup before acknowledging it; the
// backup (-backup-of, plus a required -repl-listen) serves only the
// replication protocol and the admin surface — no SMTP or POP3. A
// restarted backup is re-admitted automatically: the primary's
// seq-aware liveness probe notices the listener, sees the backup's
// rebooted apply cursor trailing its sequence space, and runs the
// catch-up resync within one ping period — even on an idle primary. /healthz on either node reports role, epoch, and
// last-resync time, answering 503 while the pair is degraded.
// Promotion of a backup is an operator action (restart it with
// -replica); only promote a backup whose /healthz shows it in sync.
// Replication is mutually exclusive with -mirror, -checksum, and
// -fault-rate.
//
// The -fault-* flags run the server in fault-drill mode: a
// deterministic gfs.Faulty layer injects transient file-system faults
// (1 in -fault-rate calls per operation class) from -fault-seed's
// schedule. The same seed replays the same drill; a per-class summary
// of the injected-fault log (plus the first few events) is printed on
// shutdown. Clients see SMTP 451 / POP3 -ERR [SYS/TEMP] for failures
// the retry layer cannot absorb — never lost acknowledged mail.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/gfs"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/pop3"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// faultLogDumpCap bounds the shutdown fault-log dump: a long drill can
// inject millions of faults, and dumping them all would bury the
// summary (and stall shutdown). The full log stays available over
// -admin while the process runs.
const faultLogDumpCap = 20

// dumpFaultLog prints a per-class summary of the drill's injected
// faults, then the first faultLogDumpCap events verbatim.
func dumpFaultLog(fl []gfs.FaultEvent) {
	var perClass [gfs.NumFaultOps]int
	for _, e := range fl {
		perClass[e.Op]++
	}
	log.Printf("mailboat: drill injected %d faults:", len(fl))
	for op := gfs.FaultOp(0); op < gfs.NumFaultOps; op++ {
		if n := perClass[op]; n > 0 {
			log.Printf("mailboat:   %-10s %d", op.String(), n)
		}
	}
	for i, e := range fl {
		if i == faultLogDumpCap {
			log.Printf("mailboat:   ... %d more events suppressed", len(fl)-faultLogDumpCap)
			break
		}
		log.Printf("mailboat:   %s", e)
	}
}

func main() {
	dir := flag.String("dir", "./mailboat-data", "mail store directory")
	users := flag.Uint64("users", 100, "number of user mailboxes")
	smtpAddr := flag.String("smtp", "127.0.0.1:2525", "SMTP listen address")
	popAddr := flag.String("pop3", "127.0.0.1:2110", "POP3 listen address")
	adminAddr := flag.String("admin", "", "admin HTTP listen address for /metrics, /healthz, /debug/pprof (empty = off)")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections per listener (0 = unlimited)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-connection read/write deadline (0 = none)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period before force-closing sessions")
	mirrorDir := flag.String("mirror", "", "second replica directory: run the store mirrored (writes to both, reads fail over, boot resilvers a replaced replica)")
	syncDeliver := flag.Bool("sync", true, "deprecated: the full sync discipline (spool fsync + directory fsync) is on by default; use -no-fsync to disable it")
	noFsync := flag.Bool("no-fsync", false, "fast mode: skip ALL durability barriers; an OS crash may lose the newest acked mail (prefix-durability contract, see README)")
	retries := flag.Int("retries", 0, "delivery retry attempts on transient store failure (0 = default)")
	backoff := flag.Duration("backoff", 10*time.Millisecond, "base backoff between delivery retries")
	checksum := flag.Bool("checksum", false, "store files in checksummed envelopes; detect (and on a mirror, heal) silent corruption")
	scrubEvery := flag.Duration("scrub-interval", 0, "background integrity heal-scrub period (0 = off; requires -checksum)")
	replicaAddr := flag.String("replica", "", "run as replication PRIMARY: the backup's -repl-listen address to replicate to")
	backupOf := flag.String("backup-of", "", "run as replication BACKUP of the primary at this address (requires -repl-listen; no SMTP/POP3)")
	replListen := flag.String("repl-listen", "", "replication protocol listen address (required with -backup-of)")
	quota := flag.Uint64("quota", 0, "per-mailbox byte quota (0 = unlimited); over-quota deliveries are refused with SMTP 452")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently admitted deliveries; excess sheds with SMTP 452 (0 = unlimited)")
	shedLow := flag.Uint64("shed-low", 0, "free-byte low watermark: shed deliveries (SMTP 452, /healthz 503) when the store's file system has less free space (0 = off)")
	shedHigh := flag.Uint64("shed-high", 0, "free-byte high watermark: stop shedding once free space rises above this (default 2x -shed-low)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-drill schedule seed")
	faultRate := flag.Uint64("fault-rate", 0, "inject a fault into 1 in N file-system calls (0 = drills off)")
	faultMax := flag.Uint64("fault-max", 0, "cap on total injected faults (0 = unlimited)")
	flag.Parse()

	if *replicaAddr != "" && *backupOf != "" {
		log.Fatal("mailboat: -replica and -backup-of are mutually exclusive (a node is primary or backup, not both)")
	}
	if *backupOf != "" && *replListen == "" {
		log.Fatal("mailboat: -backup-of requires -repl-listen (the backup must serve the replication protocol)")
	}
	backup := *backupOf != ""

	// Durability: the full sync discipline is the default; -no-fsync
	// (or the legacy -sync=false) opts into the barrier-free fast mode,
	// whose checked contract is prefix durability only.
	durable := *syncDeliver && !*noFsync

	// Metrics are always collected (the disabled path costs one nil
	// check per event); -admin only controls whether they are served.
	reg := obs.NewRegistry()
	// Tracing follows the admin listener: without it there is nowhere
	// to read traces from, and a nil tracer makes the whole span path
	// free (nil-receiver no-ops all the way down).
	var tracer *trace.Tracer
	if *adminAddr != "" {
		tracer = trace.New(0, 0)
		tracer.Stages = trace.NewStageMetrics(reg)
	}
	opts := mailboatd.Options{
		Users:          *users,
		Seed:           time.Now().UnixNano(),
		SyncOnDeliver:  durable,
		SyncDirs:       durable,
		DeliverRetries: *retries,
		DeliverBackoff: *backoff,
		Metrics:        reg,
		MirrorRoot:     *mirrorDir,
		Checksum:       *checksum,
		ScrubEvery:     *scrubEvery,
		Tracer:         tracer,
		QuotaBytes:     *quota,
		MaxInFlight:    *maxInFlight,
		ShedLowWater:   *shedLow,
		ShedHighWater:  *shedHigh,
	}
	if *faultRate > 0 {
		opts.Fault = &mailboatd.FaultOptions{
			Seed:      *faultSeed,
			Rates:     gfs.UniformRates(*faultRate),
			MaxFaults: *faultMax,
		}
	}
	if *replicaAddr != "" {
		opts.Replica = &mailboatd.ReplicaOptions{
			Primary:    true,
			PeerAddr:   *replicaAddr,
			ListenAddr: *replListen,
		}
	} else if backup {
		opts.Replica = &mailboatd.ReplicaOptions{
			PeerAddr:   *backupOf,
			ListenAddr: *replListen,
		}
	}
	adapter, err := mailboatd.NewWithOptions(*dir, opts)
	if err != nil {
		log.Fatalf("mailboat: %v", err)
	}
	defer adapter.Close()
	log.Printf("mailboat: store %s recovered, %d users", *dir, *users)
	if !durable {
		log.Printf("mailboat: NO-FSYNC fast mode — an OS crash may lose the newest acked mail (prefix-durability contract only)")
	}
	if *mirrorDir != "" {
		log.Printf("mailboat: MIRRORED with replica %s (status %+v)", *mirrorDir, *adapter.MirrorStatus())
	}
	if opts.Fault != nil {
		log.Printf("mailboat: FAULT DRILL active (seed %d, 1 in %d calls)", *faultSeed, *faultRate)
	}
	if *checksum {
		log.Printf("mailboat: CHECKSUMMED store (scrub interval %v)", *scrubEvery)
	}
	if *quota > 0 {
		log.Printf("mailboat: per-mailbox quota %d bytes", *quota)
	}
	if *shedLow > 0 || *maxInFlight > 0 {
		inflight := "unbounded in-flight deliveries"
		if *maxInFlight > 0 {
			inflight = fmt.Sprintf("max %d deliveries in flight", *maxInFlight)
		}
		water := "no free-space watermark"
		if *shedLow > 0 {
			high := *shedHigh
			if high < *shedLow {
				high = 2 * *shedLow
			}
			water = fmt.Sprintf("low %d / high %d free bytes", *shedLow, high)
		}
		log.Printf("mailboat: SHED POLICY active (%s, %s)", water, inflight)
	}
	if *replicaAddr != "" {
		log.Printf("mailboat: PRIMARY replicating to backup at %s", *replicaAddr)
	}
	if backup {
		log.Printf("mailboat: BACKUP of %s — replication on %s, no client listeners", *backupOf, *replListen)
	}

	harden := func(read, write *time.Duration, conns *int) {
		*read = *timeout
		*write = *timeout
		*conns = *maxConns
	}
	errs := make(chan error, 3)
	// A backup serves only the replication protocol (plus admin): mail
	// clients talk to the primary, and a half-open POP3 path on the
	// backup would read a store that is legitimately behind mid-resync.
	var ss *smtp.Server
	var ps *pop3.Server
	if !backup {
		ss = smtp.NewServer(adapter, *users)
		ss.Metrics = smtp.NewMetrics(reg)
		ss.Tracer = tracer
		harden(&ss.ReadTimeout, &ss.WriteTimeout, &ss.MaxConns)
		go func() { errs <- ss.ListenAndServe(*smtpAddr) }()
		log.Printf("mailboat: SMTP on %s", *smtpAddr)

		ps = pop3.NewServer(adapter, *users)
		ps.Metrics = pop3.NewMetrics(reg)
		ps.Tracer = tracer
		harden(&ps.ReadTimeout, &ps.WriteTimeout, &ps.MaxConns)
		go func() { errs <- ps.ListenAndServe(*popAddr) }()
		log.Printf("mailboat: POP3 on %s", *popAddr)
	}

	if *adminAddr != "" {
		// Healthy = both protocol listeners are up (a backup has none;
		// its health is the replication snapshot's).
		healthz := func() error {
			if !backup && (ss.Addr() == nil || ps.Addr() == nil) {
				return errors.New("protocol listener not up")
			}
			return nil
		}
		// While the mirror is degraded or resilvering, /healthz answers
		// 503 with the per-replica status as JSON (nil func on plain,
		// non-mirrored stores keeps the 200 "ok" contract). The adapter
		// is the scrub runner; on a store without an integrity layer
		// POST /scrub answers 409 and /healthz is unaffected.
		as := &http.Server{Addr: *adminAddr, Handler: admin.Handler(reg, healthz, adapter.MirrorStatus, adapter, tracer, adapter.ReplHealth, adapter.ShedStatus)}
		go func() { errs <- as.ListenAndServe() }()
		defer as.Close()
		log.Printf("mailboat: admin HTTP on %s (/metrics, /healthz, /version, /traces, /debug/pprof)", *adminAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errs:
		if err != nil {
			log.Fatalf("mailboat: %v", err)
		}
		log.Fatal("mailboat: listener closed unexpectedly")
	case sig := <-sigs:
		log.Printf("mailboat: %v, draining (up to %v)", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if ss != nil {
			if err := ss.Shutdown(ctx); err != nil {
				log.Printf("mailboat: smtp shutdown: %v", err)
			}
		}
		if ps != nil {
			if err := ps.Shutdown(ctx); err != nil {
				log.Printf("mailboat: pop3 shutdown: %v", err)
			}
		}
		if fl := adapter.FaultLog(); fl != nil {
			dumpFaultLog(fl)
		}
		log.Printf("mailboat: bye")
	}
}
