// locstats regenerates the paper's effort tables (Tables 2, 3, and 4)
// from this repository's components, printing each measured count next
// to the paper's original number.
//
// Usage:
//
//	locstats [-root dir] [-table 2|3|4]   (default: all three)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/loc"
)

func main() {
	root := flag.String("root", ".", "repository root")
	table := flag.Int("table", 0, "print only this table (2, 3, or 4)")
	inventory := flag.Bool("inventory", false, "print a per-package line-count inventory instead")
	flag.Parse()

	if *inventory {
		rows, err := loc.Inventory(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locstats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(loc.FormatTable("Repository inventory (non-test code lines; tests noted)", rows))
		return
	}

	type gen struct {
		n     int
		title string
		f     func(string) ([]loc.Row, error)
	}
	gens := []gen{
		{2, "Table 2: Lines of code for Perennial and Goose", loc.Table2},
		{3, "Table 3: Lines of code per crash-safety pattern", loc.Table3},
		{4, "Table 4: Lines of code for Mailboat vs CMAIL", loc.Table4},
	}
	for _, g := range gens {
		if *table != 0 && g.n != *table {
			continue
		}
		rows, err := g.f(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locstats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(loc.FormatTable(g.title, rows))
	}
}
