// perennial-check runs the verification suite: every verified example's
// model-checking scenario (replicated disk, shadow copy, write-ahead
// log, group commit, Mailboat) plus the seeded-bug variants that must
// produce counterexamples. It is the reproduction's analog of running
// coqc over the paper's proofs — exit status 0 means every check came
// out as expected.
//
// Usage:
//
//	perennial-check [-pattern substr] [-max N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/suite"
)

func main() {
	pattern := flag.String("pattern", "", "only run scenarios whose pattern or name contains this substring")
	maxExec := flag.Int("max", 0, "override per-scenario execution budget")
	verbose := flag.Bool("v", false, "print counterexamples for expected bugs too")
	minimize := flag.Bool("min", false, "minimize counterexample choice sequences before printing")
	flag.Parse()

	entries := suite.All()
	failed := 0
	ran := 0
	for _, e := range entries {
		if *pattern != "" &&
			!strings.Contains(e.Pattern, *pattern) &&
			!strings.Contains(e.Scenario.Name, *pattern) {
			continue
		}
		ran++
		opts := e.Opts
		if *maxExec > 0 {
			opts.MaxExecutions = *maxExec
		}
		start := time.Now()
		rep := explore.Run(e.Scenario, opts)
		elapsed := time.Since(start).Round(time.Millisecond)

		status := "PASS"
		switch {
		case e.WantViolation && rep.OK():
			status = "FAIL (expected a counterexample, found none)"
			failed++
		case !e.WantViolation && !rep.OK():
			status = "FAIL"
			failed++
		case e.WantViolation:
			status = "PASS (bug found as expected)"
		}
		fmt.Printf("%-34s %-38s %v\n", e.Scenario.Name, status, elapsed)
		fmt.Printf("    %s\n", rep.String())
		fmt.Printf("    stats: %s\n", rep.Stats)
		if rep.Counterexample != nil && (!e.WantViolation || *verbose) {
			if *minimize {
				min := explore.Minimize(e.Scenario, rep.Counterexample.Choices)
				fmt.Printf("    minimized to %d choices (from %d): %v\n",
					len(min), len(rep.Counterexample.Choices), min)
				if cx := explore.ReplayCx(e.Scenario, min); cx != nil {
					fmt.Println(indent(cx.Format(), "    "))
				}
			} else {
				fmt.Println(indent(rep.Counterexample.Format(), "    "))
			}
		}
	}
	fmt.Printf("\n%d scenarios, %d failed\n", ran, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
