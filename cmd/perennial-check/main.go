// perennial-check runs the verification suite: every verified example's
// model-checking scenario (replicated disk, shadow copy, write-ahead
// log, group commit, Mailboat) plus the seeded-bug variants that must
// produce counterexamples. It is the reproduction's analog of running
// coqc over the paper's proofs — exit status 0 means every check came
// out as expected.
//
// Usage:
//
//	perennial-check [-pattern substr] [-heaviest] [-max N] [-workers N]
//	                [-dedup] [-nodedup] [-selfcheck] [-v] [-min]
//	                [-progress d] [-benchjson FILE]
//
// The systematic search runs on -workers workers (default GOMAXPROCS)
// with crash-boundary state dedup on (disable with -nodedup, or
// -dedup=false). -selfcheck runs every selected scenario twice — dedup
// off and on — and fails if pruning changes any verdict (the mechanical
// witness of DESIGN.md §5). -progress streams live search telemetry to
// stderr at the given period (execs/s, frontier depth, dedup hit rate,
// per-worker donations, budget ETA); it reads only lock-free counters,
// so verdicts and counterexamples are identical with and without it.
// -benchjson runs each selected scenario at 1 and -workers workers,
// dedup off and on, and writes the measurements as JSON (the source of
// BENCH_explore.json). See docs/CHECKING.md for the checker handbook.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/suite"
)

func main() {
	pattern := flag.String("pattern", "", "only run scenarios whose pattern or name contains this substring")
	heaviest := flag.Bool("heaviest", false, "only run the heaviest verified scenarios (the benchmark targets)")
	maxExec := flag.Int("max", 0, "override per-scenario execution budget")
	workers := flag.Int("workers", 0, "systematic-search workers (0 = GOMAXPROCS)")
	dedup := flag.Bool("dedup", true, "enable crash-boundary state dedup")
	noDedup := flag.Bool("nodedup", false, "disable crash-boundary state dedup (escape hatch; same as -dedup=false)")
	selfCheck := flag.Bool("selfcheck", false, "run each scenario with dedup off and on and fail if verdicts differ")
	verbose := flag.Bool("v", false, "print counterexamples for expected bugs too, and per-worker stats")
	minimize := flag.Bool("min", false, "minimize counterexample choice sequences before printing")
	benchJSON := flag.String("benchjson", "", "write 1-vs-N-worker throughput measurements for the selected scenarios to this JSON file")
	progress := flag.Duration("progress", 0, "stream live search progress to stderr at this period (0 = off)")
	flag.Parse()

	entries := selectEntries(*pattern, *heaviest)
	if len(entries) == 0 {
		fmt.Fprintf(os.Stderr, "no scenarios match -pattern %q\n", *pattern)
		os.Exit(1)
	}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, entries, *maxExec, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, e := range entries {
		opts := e.Opts
		if *maxExec > 0 {
			opts.MaxExecutions = *maxExec
		}
		opts.Workers = *workers
		opts.NoDedup = *noDedup || !*dedup
		if *progress > 0 {
			// Telemetry goes to stderr so stdout stays the stable
			// machine-readable report surface.
			opts.Progress = &explore.ProgressOptions{
				Every: *progress,
				Sink:  func(s explore.Snapshot) { fmt.Fprintln(os.Stderr, s) },
			}
		}

		if *selfCheck {
			if e.Scenario.Fingerprint == nil {
				fmt.Printf("%-34s %-38s\n", e.Scenario.Name, "SKIP (no Fingerprint hook)")
				continue
			}
			start := time.Now()
			with, without, err := explore.SelfCheckDedup(e.Scenario, opts)
			elapsed := time.Since(start).Round(time.Millisecond)
			if err != nil {
				failed++
				fmt.Printf("%-34s %-38s %v\n", e.Scenario.Name, "SELF-CHECK FAIL", elapsed)
				fmt.Printf("    %v\n", err)
				continue
			}
			fmt.Printf("%-34s %-38s %v\n", e.Scenario.Name, "SELF-CHECK PASS", elapsed)
			fmt.Printf("    without dedup: %s\n", without.String())
			fmt.Printf("    with dedup:    %s (%d boundaries, %d pruned)\n",
				with.String(), with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
			continue
		}

		start := time.Now()
		rep := explore.Run(e.Scenario, opts)
		elapsed := time.Since(start).Round(time.Millisecond)

		status := "PASS"
		switch {
		case e.WantViolation && rep.OK():
			status = "FAIL (expected a counterexample, found none)"
			failed++
		case !e.WantViolation && !rep.OK():
			status = "FAIL"
			failed++
		case e.WantViolation:
			status = "PASS (bug found as expected)"
		}
		fmt.Printf("%-34s %-38s %v\n", e.Scenario.Name, status, elapsed)
		fmt.Printf("    %s\n", rep.String())
		fmt.Printf("    stats: %s\n", rep.Stats)
		if *verbose && len(rep.Stats.PerWorker) > 1 {
			fmt.Printf("    per-worker:")
			for w, ws := range rep.Stats.PerWorker {
				fmt.Printf(" w%d=%d", w, ws.Executions)
				if ws.Pruned > 0 {
					fmt.Printf("(%dp)", ws.Pruned)
				}
			}
			fmt.Println()
		}
		if rep.Counterexample != nil && (!e.WantViolation || *verbose) {
			if *minimize {
				min := explore.Minimize(e.Scenario, rep.Counterexample.Choices)
				fmt.Printf("    minimized to %d choices (from %d): %v\n",
					len(min), len(rep.Counterexample.Choices), min)
				if cx := explore.ReplayCx(e.Scenario, min); cx != nil {
					fmt.Println(indent(cx.Format(), "    "))
				}
			} else {
				fmt.Println(indent(rep.Counterexample.Format(), "    "))
			}
		}
	}
	fmt.Printf("\n%d scenarios, %d failed\n", len(entries), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func selectEntries(pattern string, heaviest bool) []suite.Entry {
	pool := suite.All()
	if heaviest {
		pool = suite.Heaviest()
	}
	var out []suite.Entry
	for _, e := range pool {
		if pattern != "" &&
			!strings.Contains(e.Pattern, pattern) &&
			!strings.Contains(e.Scenario.Name, pattern) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// benchRun is one (workers, dedup) measurement of a scenario.
type benchRun struct {
	Workers     int     `json:"workers"`
	Dedup       bool    `json:"dedup"`
	Executions  int     `json:"executions"`
	Pruned      int     `json:"pruned"`
	Boundaries  int     `json:"distinct_boundaries"`
	DurationSec float64 `json:"duration_s"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	Complete    bool    `json:"complete"`
	Verdict     string  `json:"verdict"`
}

type benchScenario struct {
	Name   string     `json:"name"`
	Budget int        `json:"budget"`
	Runs   []benchRun `json:"runs"`
}

type benchFile struct {
	CPUs       int             `json:"cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	Date       string          `json:"date"`
	Scenarios  []benchScenario `json:"scenarios"`
}

// writeBench measures each scenario at 1 and N workers, dedup off and
// on, at equal budgets, and writes the JSON consumed by EXPERIMENTS.md.
func writeBench(path string, entries []suite.Entry, maxExec, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := benchFile{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	configs := []struct {
		workers int
		dedup   bool
	}{
		{1, false},
		{workers, false},
		{1, true},
		{workers, true},
	}
	for _, e := range entries {
		opts := e.Opts
		if maxExec > 0 {
			opts.MaxExecutions = maxExec
		}
		opts.StressExecutions = 0 // measure the systematic phase only
		bs := benchScenario{Name: e.Scenario.Name, Budget: opts.MaxExecutions}
		seen := map[[2]bool]bool{}
		for _, c := range configs {
			key := [2]bool{c.workers == 1, c.dedup}
			if c.workers == 1 || workers == 1 {
				if seen[key] {
					continue // 1-worker and N-worker configs coincide
				}
				seen[key] = true
			}
			o := opts
			o.Workers = c.workers
			o.NoDedup = !c.dedup
			rep := explore.Run(e.Scenario, o)
			verdict := "OK"
			if !rep.OK() {
				verdict = "VIOLATION"
			}
			bs.Runs = append(bs.Runs, benchRun{
				Workers:     c.workers,
				Dedup:       c.dedup && rep.Stats.DedupActive,
				Executions:  rep.Executions,
				Pruned:      rep.Stats.PrunedStates,
				Boundaries:  rep.Stats.DistinctBoundaries,
				DurationSec: rep.Stats.Duration.Seconds(),
				ExecsPerSec: rep.Stats.ExecsPerSec,
				Complete:    rep.Complete,
				Verdict:     verdict,
			})
			fmt.Printf("%-34s workers=%d dedup=%-5v %8d execs %8.0f execs/s %s\n",
				e.Scenario.Name, c.workers, c.dedup, rep.Executions, rep.Stats.ExecsPerSec, verdict)
		}
		out.Scenarios = append(out.Scenarios, bs)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
