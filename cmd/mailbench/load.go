package main

// The load harness: an open-loop, multi-tenant traffic generator with
// sustained mid-load drills — the scoreboard run of ROADMAP's
// "million-mailbox load harness". It drives the real mailboatd stack
// (the same adapter cmd/mailboat serves SMTP/POP3 from) at a fixed
// offered rate over a zipfian-skewed mailbox population, executes a
// seeded schedule of drills (crash-restart, fault burst, corruption
// flip, replica partition) while the load keeps flowing, buckets
// latency into steady vs drill phases, holds the steady phases to the
// declared SLO gates, and audits the durability contract afterwards:
// zero acked-mail loss, no resurrected deletes, no torn or corrupt
// bytes served, byte-identical replicas.
//
// Honesty notes, mirrored in docs/DURABILITY.md:
//   - The crash drill is a *process* restart with full crash recovery
//     (spool sweep, resilver/scrub, replica resync), quiesced at the
//     adapter boundary: in-flight requests drain before the store
//     closes. Mid-operation and mid-fsync crashes — the states a
//     process restart cannot reach — are the model checker's job
//     (mb/deliver+pickup+crash, mb/writeback+*); the harness proves
//     the same recovery code digests a live store under load.
//   - Under -no-fsync the zero-loss audit is reported but not
//     enforced (LossChecked=false): the weaker checked contract is
//     prefix durability, owned by mb/writeback+prefix-contract.

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/postal"
	"repro/internal/trace"
)

// Drill names accepted by -drill.
const (
	drillCrash     = "crash"     // close the primary, reopen through full crash recovery
	drillFault     = "fault"     // crash-restart into a seeded transient-fault burst
	drillCorrupt   = "corrupt"   // flip live bytes on one replica, heal-scrub under load
	drillPartition = "partition" // cut the replication link, heal, catch-up resync
	drillDiskFull  = "diskfull"  // force the no-space latch: fill, shed, free, recover
)

// loadConfig is the flag surface of a load run.
type loadConfig struct {
	base     string
	users    uint64
	rate     float64
	duration time.Duration
	seed     int64
	noFsync  bool
	skew     string
	zipfS    float64
	mix      float64
	drills   []string
	workers  int
}

// drillRecord is the machine-readable outcome of one executed drill
// (schema-v3 "drills" array).
type drillRecord struct {
	Name   string  `json:"name"`
	AtSec  float64 `json:"at_seconds"`       // scheduled offset into the run
	DurSec float64 `json:"duration_seconds"` // how long the drill action took
	Detail string  `json:"detail,omitempty"`
	OK     bool    `json:"ok"`
}

// loadAudit is the post-run durability audit (schema-v3 "audit").
type loadAudit struct {
	Acked       int `json:"acked"`
	Deleted     int `json:"deleted"`
	Present     int `json:"present"`
	Lost        int `json:"lost"`
	Resurrected int `json:"resurrected"`
	BadHashes   int `json:"bad_hashes"`
	// LossChecked is false under -no-fsync: the zero-loss numbers are
	// reported but the weaker prefix-durability contract (checked by
	// mb/writeback+prefix-contract) is not enforced here.
	LossChecked     bool     `json:"loss_checked"`
	ZeroAckedLoss   bool     `json:"zero_acked_loss"`
	ResyncSec       *float64 `json:"resync_seconds,omitempty"`
	StoresIdentical *bool    `json:"stores_identical,omitempty"`
}

// loadOutcome bundles everything a load run reports and records.
type loadOutcome struct {
	Deployment string
	Res        postal.OpenLoopResult
	Gates      []postal.GateResult
	PhaseGates []postal.PhaseGateResult
	SLOPass    bool
	Drills     []drillRecord
	Audit      loadAudit
}

// deploymentFor picks the store deployment the requested drills need,
// and rejects combinations the mailboatd option matrix excludes
// (replication is exclusive with the checksum/mirror and fault
// layers; the mirror is exclusive with the fault layer).
func deploymentFor(drills []string) (string, error) {
	has := map[string]bool{}
	for _, d := range drills {
		switch d {
		case drillCrash, drillFault, drillCorrupt, drillPartition, drillDiskFull:
			// diskfull works on every deployment (the shed surface is on
			// the adapter itself) and forces none.
			has[d] = true
		default:
			return "", fmt.Errorf("unknown drill %q (valid: %s, %s, %s, %s, %s)",
				d, drillCrash, drillFault, drillCorrupt, drillPartition, drillDiskFull)
		}
	}
	if has[drillPartition] && (has[drillCorrupt] || has[drillFault]) {
		return "", fmt.Errorf("drill %q needs the replicated deployment, which excludes %q and %q (see mailboatd.Options)",
			drillPartition, drillCorrupt, drillFault)
	}
	if has[drillCorrupt] && has[drillFault] {
		return "", fmt.Errorf("drill %q needs the mirrored deployment, which excludes the fault layer of %q",
			drillCorrupt, drillFault)
	}
	switch {
	case has[drillPartition]:
		return "replicated", nil
	case has[drillCorrupt]:
		return "mirror+checksum", nil
	default:
		return "plain", nil
	}
}

// drillSchedule spaces n drills evenly through the run — drill i
// fires at (i+1)·D/(n+1) — and cuts the run into alternating gated
// steady windows and ungated drill windows. The drill window spans
// half the inter-drill gap, generous enough to also absorb the
// backlog drain after a restart, so the following steady window
// measures steady state again. Everything is a pure function of
// (drills, duration): the schedule is as replayable as the seed.
func drillSchedule(drills []string, d time.Duration) ([]postal.PhaseWindow, []time.Duration) {
	n := len(drills)
	if n == 0 {
		return nil, nil
	}
	gap := d / time.Duration(n+1)
	dwell := gap / 2
	var windows []postal.PhaseWindow
	times := make([]time.Duration, n)
	seen := map[string]int{}
	prevEnd := time.Duration(0)
	for i, name := range drills {
		at := gap * time.Duration(i+1)
		times[i] = at
		windows = append(windows, postal.PhaseWindow{
			Name: fmt.Sprintf("steady-%d", i), Start: prevEnd, End: at, Gated: true,
		})
		label := name
		if seen[name] > 0 {
			label = fmt.Sprintf("%s#%d", name, seen[name]+1)
		}
		seen[name]++
		windows = append(windows, postal.PhaseWindow{Name: label, Start: at, End: at + dwell})
		prevEnd = at + dwell
	}
	windows = append(windows, postal.PhaseWindow{
		Name: fmt.Sprintf("steady-%d", n), Start: prevEnd, End: 0, Gated: true,
	})
	return windows, times
}

// loadHarness adapts a mailboatd deployment to postal.Backend and
// owns the drill surface. Requests take the read half of mu; drills
// that replace the adapter (crash, fault) take the write half, so a
// restart drains in-flight requests, swaps stores, and the queueing
// shows up as open-loop latency — never as a torn call into a closed
// store.
type loadHarness struct {
	cfg        loadConfig
	deployment string

	mu      sync.RWMutex
	primary *mailboatd.Adapter
	backup  *mailboatd.Adapter // replicated deployment only

	proot, broot, mroot string
	baddr               string
	cleanups            []func()

	// epoch fences POP3-style sessions across restarts: a restart
	// invalidates the library's in-memory per-user locks, so Delete
	// and Unlock calls from a session that began on the old adapter
	// must be dropped, not aimed at the new one.
	epoch     atomic.Uint64
	sessEpoch []uint64 // indexed by worker; single-writer per worker

	spans []*trace.Span // indexed by worker; single-writer per worker

	acked   sync.Map // message body -> true, on acked Deliver
	deleted sync.Map // message body -> true, on acked Delete
	ids     sync.Map // "user/id" -> body, recorded at Pickup

	drillMu sync.Mutex
	drills  []drillRecord
	bursts  int // fault bursts executed (varies the burst seed)
}

func newLoadHarness(cfg loadConfig, deployment string) (*loadHarness, error) {
	h := &loadHarness{
		cfg:        cfg,
		deployment: deployment,
		sessEpoch:  make([]uint64, cfg.workers),
		spans:      make([]*trace.Span, cfg.workers),
	}
	mk := func(label string) (string, error) {
		root, err := os.MkdirTemp(cfg.base, "mailbench-load-"+label+"-*")
		if err != nil {
			return "", err
		}
		h.cleanups = append(h.cleanups, func() { os.RemoveAll(root) })
		return root, nil
	}
	var err error
	if h.proot, err = mk("p"); err != nil {
		return nil, err
	}
	switch deployment {
	case "mirror+checksum":
		if h.mroot, err = mk("m"); err != nil {
			h.close()
			return nil, err
		}
	case "replicated":
		if h.broot, err = mk("b"); err != nil {
			h.close()
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.close()
			return nil, err
		}
		h.baddr = lis.Addr().String()
		lis.Close()
		backup, err := mailboatd.NewWithOptions(h.broot, mailboatd.Options{
			Users:         cfg.users,
			Seed:          cfg.seed + 1,
			SyncOnDeliver: !cfg.noFsync,
			SyncDirs:      !cfg.noFsync,
			Replica:       &mailboatd.ReplicaOptions{ListenAddr: h.baddr},
		})
		if err != nil {
			h.close()
			return nil, err
		}
		h.backup = backup
	}
	primary, err := mailboatd.NewWithOptions(h.proot, h.primaryOptions(nil))
	if err != nil {
		h.close()
		return nil, err
	}
	h.primary = primary
	return h, nil
}

// primaryOptions builds the primary's option set for the deployment;
// fault (only legal on the plain deployment) runs the store behind a
// seeded transient-fault schedule.
func (h *loadHarness) primaryOptions(fault *mailboatd.FaultOptions) mailboatd.Options {
	o := mailboatd.Options{
		Users:         h.cfg.users,
		Seed:          h.cfg.seed,
		SyncOnDeliver: !h.cfg.noFsync,
		SyncDirs:      !h.cfg.noFsync,
		Fault:         fault,
	}
	switch h.deployment {
	case "mirror+checksum":
		o.MirrorRoot = h.mroot
		o.Checksum = true
	case "replicated":
		o.Replica = &mailboatd.ReplicaOptions{
			Primary:      true,
			PeerAddr:     h.baddr,
			CallTimeout:  2 * time.Second,
			PingEvery:    25 * time.Millisecond,
			RetryBackoff: time.Millisecond,
		}
	}
	return o
}

func (h *loadHarness) close() {
	if h.primary != nil {
		h.primary.Close()
		h.primary = nil
	}
	if h.backup != nil {
		h.backup.Close()
		h.backup = nil
	}
	for i := len(h.cleanups) - 1; i >= 0; i-- {
		h.cleanups[i]()
	}
	h.cleanups = nil
}

// SetWorkerSpan implements postal.SpanCarrier.
func (h *loadHarness) SetWorkerSpan(w int, sp *trace.Span) { h.spans[w] = sp }

// Deliver implements postal.Backend, tracking acked bodies for the
// zero-loss audit.
func (h *loadHarness) Deliver(w int, user uint64, msg []byte) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	err := h.primary.DeliverTraced(h.spans[w], user, msg)
	if err == nil {
		h.acked.Store(string(msg), true)
	}
	return err
}

// Pickup implements postal.Backend, recording id→body so a later
// acked Delete can be credited to its message.
func (h *loadHarness) Pickup(w int, user uint64) ([]mailboat.Message, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	h.sessEpoch[w] = h.epoch.Load()
	msgs, err := h.primary.PickupTraced(h.spans[w], user)
	if err == nil {
		for _, m := range msgs {
			h.ids.Store(idKey(user, m.ID), m.Contents)
		}
	}
	return msgs, err
}

// Delete implements postal.Backend. A session fenced by a restart is
// dropped: its per-user lock died with the old adapter.
func (h *loadHarness) Delete(w int, user uint64, id string) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.sessEpoch[w] != h.epoch.Load() {
		return nil
	}
	err := h.primary.DeleteTraced(h.spans[w], user, id)
	if err == nil {
		if v, ok := h.ids.Load(idKey(user, id)); ok {
			h.deleted.Store(v.(string), true)
		}
	}
	return err
}

// Unlock implements postal.Backend.
func (h *loadHarness) Unlock(w int, user uint64) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.sessEpoch[w] != h.epoch.Load() {
		return
	}
	h.primary.Unlock(user)
}

func idKey(user uint64, id string) string {
	return fmt.Sprintf("%d/%s", user, id)
}

// restart closes the primary and reopens it through full crash
// recovery (spool sweep; resilver+scrub on the mirrored deployment;
// epoch fencing and catch-up resync on the replicated one), draining
// in-flight requests first and fencing POP3 sessions that straddle
// the boundary.
func (h *loadHarness) restart(fault *mailboatd.FaultOptions) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.primary.Close()
	h.epoch.Add(1)
	a, err := mailboatd.NewWithOptions(h.proot, h.primaryOptions(fault))
	if err != nil {
		return fmt.Errorf("reopening the store after the crash drill: %w", err)
	}
	h.primary = a
	return nil
}

// execDrill runs one scheduled drill and records its outcome.
func (h *loadHarness) execDrill(name string, at time.Duration, dwell time.Duration) {
	rec := drillRecord{Name: name, AtSec: at.Seconds()}
	start := time.Now()
	switch name {
	case drillCrash:
		if err := h.restart(nil); err != nil {
			rec.Detail = err.Error()
		} else {
			rec.OK, rec.Detail = true, "close + full crash recovery"
		}
	case drillFault:
		h.drillMu.Lock()
		burst := h.bursts
		h.bursts++
		h.drillMu.Unlock()
		fo := &mailboatd.FaultOptions{
			// A fresh seed per burst: distinct replayable schedules.
			Seed: h.cfg.seed + 1000*int64(burst+1),
			// 1-in-8 per transient class, capped: a burst, not a new
			// steady state. UniformRates leaves the durable classes
			// (corrupt, fail-stop) at zero.
			Rates:     gfs.UniformRates(8),
			MaxFaults: 96,
		}
		if err := h.restart(fo); err != nil {
			rec.Detail = err.Error()
		} else {
			rec.OK = true
			rec.Detail = fmt.Sprintf("restart + seeded burst (seed %d, <=96 faults at 1-in-8)", fo.Seed)
		}
	case drillCorrupt:
		h.mu.RLock()
		path := h.primary.CorruptReplica(0)
		if path == "" {
			rec.Detail = "nothing to corrupt (no published mailbox files on replica 0 yet)"
			h.mu.RUnlock()
			break
		}
		rep, _ := h.primary.Scrub(true)
		detected := h.primary.IntegrityDetected()
		h.mu.RUnlock()
		rec.OK = detected > 0 && rep.Clean()
		rec.Detail = fmt.Sprintf("flipped %s; heal scrub %s; detected=%d", path, rep, detected)
	case drillPartition:
		h.mu.RLock()
		tr := h.primary.ReplTransport()
		h.mu.RUnlock()
		if tr == nil {
			rec.Detail = "no replication transport (not a replicated deployment?)"
			break
		}
		cut := dwell / 3
		if cut > 500*time.Millisecond {
			cut = 500 * time.Millisecond
		}
		tr.Partition(true)
		time.Sleep(cut)
		tr.Partition(false)
		rec.OK = true
		rec.Detail = fmt.Sprintf("replication link cut %v, healed", cut.Round(time.Millisecond))
	case drillDiskFull:
		// Fill: force the store's no-space signal (the drill analog of a
		// full disk), so admission control sheds every delivery while the
		// load keeps arriving. Shed probes are composed and would be
		// tracked if they slipped through — an ack while "full" must
		// survive the audit like any other ack.
		sampler := postal.NewSampler(postal.Workload{Users: h.cfg.users}, h.cfg.seed+13, 1<<20)
		h.mu.RLock()
		h.primary.ForceNoSpace()
		probe := postal.Compose(sampler.Rng(), 64)
		perr := h.primary.DeliverTraced(nil, 0, probe)
		if perr == nil {
			h.acked.Store(string(probe), true)
		}
		st := h.primary.ShedStatus()
		h.mu.RUnlock()
		shedOK := perr != nil && isInsufficientStorage(perr) && st != nil && st.Shedding

		// Dwell full for a slice of the drill window: the open-loop
		// workload keeps offering and must be refused, not hung or lost.
		hold := dwell / 3
		if hold > 500*time.Millisecond {
			hold = 500 * time.Millisecond
		}
		time.Sleep(hold)

		// Free: release the latch and measure time back to the first
		// committed delivery — the recovery the bench gate watches.
		h.mu.RLock()
		h.primary.ReleaseNoSpace()
		h.mu.RUnlock()
		freed := time.Now()
		recovered := false
		for time.Since(freed) < 10*time.Second {
			msg := postal.Compose(sampler.Rng(), 64)
			h.mu.RLock()
			err := h.primary.DeliverTraced(nil, 0, msg)
			h.mu.RUnlock()
			if err == nil {
				h.acked.Store(string(msg), true)
				recovered = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		rec.OK = shedOK && recovered
		switch {
		case !shedOK:
			rec.Detail = fmt.Sprintf("store did not shed while full (probe err %v, status %+v)", perr, st)
		case !recovered:
			rec.Detail = "no delivery committed within 10s of freeing space"
		default:
			rec.Detail = fmt.Sprintf("shed while full (452-class), held %v, recovered %v after free",
				hold.Round(time.Millisecond), time.Since(freed).Round(time.Millisecond))
		}
	}
	rec.DurSec = time.Since(start).Seconds()
	h.drillMu.Lock()
	h.drills = append(h.drills, rec)
	h.drillMu.Unlock()
}

// awaitResync drives probe deliveries through the replicated path
// until the pair reports in sync (same epoch, no resync in flight,
// peer reachable, not degraded) — the first probe after a heal trips
// any pending catch-up resync. Probes are composed (hash-headed) and
// tracked like any other delivery, so the audit covers them too.
func (h *loadHarness) awaitResync() (time.Duration, error) {
	sampler := postal.NewSampler(postal.Workload{Users: h.cfg.users}, h.cfg.seed+7, 1<<20)
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	for {
		msg := postal.Compose(sampler.Rng(), 64)
		h.mu.RLock()
		if err := h.primary.DeliverTraced(nil, 0, msg); err == nil {
			h.acked.Store(string(msg), true)
		}
		pst, bst := h.primary.ReplNode().Status(), h.backup.ReplNode().Status()
		hl := h.primary.ReplHealth()
		h.mu.RUnlock()
		if pst.Epoch == bst.Epoch && !pst.Resyncing && !bst.Resyncing && hl.PeerReachable && !hl.Degraded {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return time.Since(start), fmt.Errorf("pair never resynced: primary %+v backup %+v", pst, bst)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// audit sweeps every mailbox on the primary and checks the
// durability contract: every acked, never-deleted message present;
// no acked delete resurrected; every served message hash-verified.
func (h *loadHarness) audit() (loadAudit, error) {
	a := loadAudit{LossChecked: !h.cfg.noFsync}

	present := sync.Map{}
	var bad, presentN atomic.Int64
	var wg sync.WaitGroup
	var sweepErr atomic.Value
	var nextUser atomic.Uint64
	for w := 0; w < h.cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := nextUser.Add(1) - 1
				if u >= h.cfg.users {
					return
				}
				msgs, err := h.primary.Pickup(u)
				if err != nil {
					sweepErr.Store(err)
					return
				}
				for _, m := range msgs {
					presentN.Add(1)
					present.Store(m.Contents, true)
					if !postal.Verify(m.Contents) {
						bad.Add(1)
					}
				}
				h.primary.Unlock(u)
			}
		}()
	}
	wg.Wait()
	if err, _ := sweepErr.Load().(error); err != nil {
		return a, fmt.Errorf("audit sweep: %w", err)
	}

	h.acked.Range(func(k, _ any) bool {
		a.Acked++
		body := k.(string)
		_, wasDeleted := h.deleted.Load(body)
		_, isPresent := present.Load(body)
		if wasDeleted {
			a.Deleted++
			if isPresent {
				a.Resurrected++
			}
		} else if !isPresent {
			a.Lost++
		}
		return true
	})
	a.Present = int(presentN.Load())
	a.BadHashes = int(bad.Load())
	a.ZeroAckedLoss = a.Lost == 0

	if a.BadHashes > 0 {
		return a, fmt.Errorf("%d messages served with bad hashes (torn or corrupt bytes)", a.BadHashes)
	}
	if a.Resurrected > 0 {
		return a, fmt.Errorf("%d acknowledged deletes resurrected", a.Resurrected)
	}
	if a.LossChecked && a.Lost > 0 {
		return a, fmt.Errorf("%d acknowledged deliveries lost", a.Lost)
	}
	return a, nil
}

// storesIdentical closes both nodes and compares every user
// directory byte for byte (replicated deployment only).
func (h *loadHarness) storesIdentical() (bool, error) {
	h.primary.Close()
	h.backup.Close()
	h.primary, h.backup = nil, nil
	for u := uint64(0); u < h.cfg.users; u++ {
		same, err := dirsEqual(filepath.Join(h.proot, mailboat.UserDir(u)), filepath.Join(h.broot, mailboat.UserDir(u)))
		if err != nil {
			return false, err
		}
		if !same {
			return false, nil
		}
	}
	return true, nil
}

// runLoad is the whole drill run: boot the deployment, start the
// seeded drill scheduler, drive the open-loop workload through it,
// then audit.
func runLoad(cfg loadConfig) (*loadOutcome, error) {
	if !(postal.Workload{Users: cfg.users, Skew: cfg.skew, ZipfS: cfg.zipfS, Mix: cfg.mix}).Valid() {
		return nil, fmt.Errorf("invalid workload: skew %q (want %s or %s), zipf-s %g (want > 1), mix %g (want 0..1)",
			cfg.skew, postal.SkewUniform, postal.SkewZipf, cfg.zipfS, cfg.mix)
	}
	deployment, err := deploymentFor(cfg.drills)
	if err != nil {
		return nil, err
	}
	if cfg.duration == 0 {
		cfg.duration = autoDuration(cfg.users)
	}
	if cfg.base == "" {
		cfg.base = postal.RAMDir()
	}
	if cfg.workers == 0 {
		cfg.workers = runtime.NumCPU()
		if cfg.workers > 8 {
			cfg.workers = 8
		}
	}
	h, err := newLoadHarness(cfg, deployment)
	if err != nil {
		return nil, err
	}
	defer h.close()

	windows, times := drillSchedule(cfg.drills, cfg.duration)
	dwell := time.Duration(0)
	if len(times) > 0 {
		dwell = cfg.duration / time.Duration(len(times)+1) / 2
	}

	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)

	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	start := time.Now()
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		for i, at := range times {
			select {
			case <-time.After(time.Until(start.Add(at))):
				h.execDrill(cfg.drills[i], at, dwell)
			case <-stop:
				return
			}
		}
	}()

	res := postal.OpenLoop(h, postal.OpenLoopOptions{
		Workers:  cfg.workers,
		Users:    cfg.users,
		Skew:     cfg.skew,
		ZipfS:    cfg.zipfS,
		Mix:      cfg.mix,
		Rate:     cfg.rate,
		Duration: cfg.duration,
		Seed:     cfg.seed,
		Tracer:   tracer,
		Windows:  windows,
	})
	close(stop)
	schedWG.Wait()

	out := &loadOutcome{Deployment: deployment, Res: res, Drills: h.drills}

	// Any durability or drill failure below is deterministic in the
	// flags; stamp the failure with the exact command that replays it.
	fail := func(err error) error {
		return fmt.Errorf("%w\n  seed %d; replay: %s", err, cfg.seed, replayCommand(cfg))
	}

	// SLO verdict: with drills, the gated steady phases decide; a bare
	// -load run gates the whole run like the trace profile does.
	out.Gates, out.SLOPass = postal.EvaluateGates(postal.DefaultGates(), res)
	if len(windows) > 0 {
		out.PhaseGates, out.SLOPass = postal.EvaluatePhaseGates(postal.DefaultGates(), res.Phases)
	}

	if deployment == "replicated" {
		resync, err := h.awaitResync()
		s := resync.Seconds()
		out.Audit.ResyncSec = &s
		if err != nil {
			return out, fail(err)
		}
	}
	audit, auditErr := h.audit()
	audit.ResyncSec = out.Audit.ResyncSec
	out.Audit = audit
	if auditErr != nil {
		return out, fail(auditErr)
	}
	for _, d := range out.Drills {
		if !d.OK {
			return out, fail(fmt.Errorf("drill %s at %.1fs failed: %s", d.Name, d.AtSec, d.Detail))
		}
	}
	if deployment == "replicated" {
		same, err := h.storesIdentical()
		if err != nil {
			return out, fail(err)
		}
		out.Audit.StoresIdentical = &same
		if !same {
			return out, fail(fmt.Errorf("stores diverged after resync"))
		}
	}
	return out, nil
}

// printLoad renders a load run for humans: workload, drills, phase
// table, SLO verdicts, audit.
func printLoad(w io.Writer, cfg loadConfig, out *loadOutcome) {
	fmt.Fprintf(w, "load harness: %s deployment, %d mailboxes, %s skew, %.0f%% deliver mix, offered %.0f req/s for %v (seed %d)\n",
		out.Deployment, cfg.users, cfg.skew, cfg.mix*100, cfg.rate, cfg.duration, cfg.seed)
	fmt.Fprintf(w, "  achieved %.0f req/s (%d reqs, %d errors); deliver p50/p99 %s/%s, pickup p50/p99 %s/%s\n",
		out.Res.Throughput, out.Res.Requests, out.Res.Errors,
		fmtSeconds(out.Res.Deliver.P50), fmtSeconds(out.Res.Deliver.P99),
		fmtSeconds(out.Res.Pickup.P50), fmtSeconds(out.Res.Pickup.P99))
	for _, d := range out.Drills {
		verdict := "ok"
		if !d.OK {
			verdict = "FAILED"
		}
		fmt.Fprintf(w, "  drill %-9s at %5.1fs (%6.3fs): %s — %s\n", d.Name, d.AtSec, d.DurSec, d.Detail, verdict)
	}
	if len(out.Res.Phases) > 0 {
		fmt.Fprintf(w, "  per-phase latency (attributed by scheduled start; drill phases not gated):\n")
		fmt.Fprintf(w, "    %-12s %6s %8s %6s  %10s %10s  %10s %10s\n",
			"phase", "gated", "reqs", "errs", "dlv p50", "dlv p99", "pkp p50", "pkp p99")
		for _, p := range out.Res.Phases {
			fmt.Fprintf(w, "    %-12s %6v %8d %6d  %10s %10s  %10s %10s\n",
				p.Name, p.Gated, p.Requests, p.Errors,
				fmtSeconds(p.Deliver.P50), fmtSeconds(p.Deliver.P99),
				fmtSeconds(p.Pickup.P50), fmtSeconds(p.Pickup.P99))
		}
	}
	if len(out.PhaseGates) > 0 {
		for _, g := range out.PhaseGates {
			fmt.Fprintf(w, "  SLO %s\n", g)
		}
	} else {
		for _, g := range out.Gates {
			fmt.Fprintf(w, "  SLO %s\n", g)
		}
	}
	if out.SLOPass {
		fmt.Fprintln(w, "  SLO verdict: PASS")
	} else {
		fmt.Fprintln(w, "  SLO verdict: FAIL")
	}
	a := out.Audit
	fmt.Fprintf(w, "  audit: %d acked, %d deleted, %d present, %d lost, %d resurrected, %d bad hashes",
		a.Acked, a.Deleted, a.Present, a.Lost, a.Resurrected, a.BadHashes)
	if a.ResyncSec != nil {
		fmt.Fprintf(w, ", resync %.3fs", *a.ResyncSec)
	}
	if a.StoresIdentical != nil {
		fmt.Fprintf(w, ", stores identical=%v", *a.StoresIdentical)
	}
	fmt.Fprintln(w)
	switch {
	case !a.LossChecked:
		fmt.Fprintln(w, "  audit: -no-fsync — zero-loss reported, not enforced (prefix contract: mb/writeback+prefix-contract)")
	case a.ZeroAckedLoss:
		fmt.Fprintln(w, "  audit: zero acked-mail loss")
	}
}

// autoDuration picks the run length for -duration 0: crash recovery
// and resync sweep the whole population, so the drill windows (half
// the inter-drill gap) must be long enough to contain an O(users)
// stall — otherwise the backlog drains into the following gated
// steady window and fails its SLO for a sizing reason, not a latency
// one.
func autoDuration(users uint64) time.Duration {
	switch {
	case users <= 20_000:
		return 8 * time.Second
	case users <= 200_000:
		return 24 * time.Second
	default:
		return 60 * time.Second
	}
}

// isInsufficientStorage reports whether err is a storage-capacity
// refusal, via the same structural marker the SMTP front end keys
// its 452 on (mailboatd.ErrNoSpace / ErrOverloaded carry it).
func isInsufficientStorage(err error) bool {
	is, ok := err.(interface{ InsufficientStorage() bool })
	return ok && is.InsufficientStorage()
}

// replayCommand renders the verbatim command line that reproduces
// this run: the workload, the drill schedule, and every fault seed
// are pure functions of these flags, so a failure message carrying
// this line is a complete bug report.
func replayCommand(cfg loadConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mailbench -load -seed %d -users %d -rate %g -duration %s -skew %s -mix %g",
		cfg.seed, cfg.users, cfg.rate, cfg.duration, cfg.skew, cfg.mix)
	if cfg.skew == postal.SkewZipf {
		fmt.Fprintf(&b, " -zipf-s %g", cfg.zipfS)
	}
	if len(cfg.drills) > 0 {
		fmt.Fprintf(&b, " -drill %s", strings.Join(cfg.drills, ","))
	}
	if cfg.noFsync {
		b.WriteString(" -no-fsync")
	}
	return b.String()
}

// parseDrills splits and normalizes the -drill flag.
func parseDrills(s string) []string {
	var out []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			out = append(out, d)
		}
	}
	return out
}
