package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestAppendBenchRunPreservesUnknownFields pins the forward-compat
// contract of BENCH_mailboat.json: an older binary appending to a file
// written by a newer schema must keep (a) unknown fields inside
// existing run entries, (b) unknown top-level keys, and (c) the
// existing runs verbatim — appending is not an excuse to rewrite
// history.
func TestAppendBenchRunPreservesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	future := `{
  "schema": "mailboat-bench/v9",
  "runs": [
    {
      "date": "2031-01-01T00:00:00Z",
      "users": 100,
      "quantum_latency": {"p50": 1e-12},
      "hyperdrills": ["warp"]
    }
  ],
  "annotations": {"operator": "future tooling wrote this"}
}`
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := appendBenchRun(path, benchRun{Date: "2026-08-08T00:00:00Z", Users: 7}); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatalf("rewritten file is not valid JSON: %v\n%s", err, b)
	}
	if got := string(top["schema"]); got != `"`+benchSchema+`"` {
		t.Errorf("schema = %s, want %q", got, benchSchema)
	}
	var runs []map[string]json.RawMessage
	if err := json.Unmarshal(top["runs"], &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(runs))
	}
	// (a) unknown fields inside the pre-existing run survive.
	for _, key := range []string{"quantum_latency", "hyperdrills"} {
		if _, ok := runs[0][key]; !ok {
			t.Errorf("existing run lost unknown field %q:\n%s", key, b)
		}
	}
	// (b) unknown top-level keys survive.
	if _, ok := top["annotations"]; !ok {
		t.Errorf("top-level unknown key \"annotations\" dropped:\n%s", b)
	}
	// (c) the new run landed.
	if got := string(runs[1]["users"]); got != "7" {
		t.Errorf("appended run users = %s, want 7", got)
	}

	// The full round trip is idempotent on the unknowns: append again
	// and everything is still there.
	if err := appendBenchRun(path, benchRun{Date: "2026-08-08T00:00:01Z", Users: 8}); err != nil {
		t.Fatal(err)
	}
	b2, _ := os.ReadFile(path)
	for _, want := range []string{"quantum_latency", "hyperdrills", "annotations", "warp"} {
		if !strings.Contains(string(b2), want) {
			t.Errorf("second append dropped %q:\n%s", want, b2)
		}
	}
}

// TestAppendBenchRunFresh: a missing file is created with the current
// schema and one run.
func TestAppendBenchRunFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := appendBenchRun(path, benchRun{Date: "2026-08-08T00:00:00Z", Users: 3}); err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema string `json:"schema"`
		Runs   []benchRun
	}
	b, _ := os.ReadFile(path)
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != benchSchema || len(f.Runs) != 1 || f.Runs[0].Users != 3 {
		t.Errorf("fresh file wrong: %+v", f)
	}
}

// TestAppendBenchRunRejectsCorrupt: a corrupt history is an error, not
// clobbered.
func TestAppendBenchRunRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendBenchRun(path, benchRun{}); err == nil {
		t.Fatal("corrupt file must be an error")
	}
	b, _ := os.ReadFile(path)
	if string(b) != "{truncated" {
		t.Errorf("corrupt file was rewritten: %q", b)
	}
}

// TestDrillSchedule pins the deterministic drill placement: n drills
// at (i+1)·D/(n+1), alternating gated steady windows and ungated drill
// windows, duplicate names disambiguated.
func TestDrillSchedule(t *testing.T) {
	windows, times := drillSchedule([]string{"crash", "crash", "partition"}, 8*time.Second)
	if len(times) != 3 || times[0] != 2*time.Second || times[1] != 4*time.Second || times[2] != 6*time.Second {
		t.Errorf("drill times wrong: %v", times)
	}
	if len(windows) != 7 {
		t.Fatalf("want 7 windows (4 steady + 3 drill), got %v", windows)
	}
	var names []string
	for _, w := range windows {
		names = append(names, w.Name)
		if strings.HasPrefix(w.Name, "steady") != w.Gated {
			t.Errorf("window %+v: only steady windows are gated", w)
		}
	}
	want := "steady-0 crash steady-1 crash#2 steady-2 partition steady-3"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("window names %q, want %q", got, want)
	}
	if windows[6].End != 0 {
		t.Errorf("last window must run to the end of the run: %+v", windows[6])
	}

	if w, ts := drillSchedule(nil, time.Second); w != nil || ts != nil {
		t.Errorf("no drills must mean no windows: %v %v", w, ts)
	}
}

// TestDeploymentFor pins the drill→deployment matrix and its rejected
// combinations (mirroring mailboatd.Options' exclusivity rules).
func TestDeploymentFor(t *testing.T) {
	cases := []struct {
		drills []string
		want   string
		ok     bool
	}{
		{nil, "plain", true},
		{[]string{"crash"}, "plain", true},
		{[]string{"fault", "crash"}, "plain", true},
		{[]string{"corrupt", "crash"}, "mirror+checksum", true},
		{[]string{"partition", "crash"}, "replicated", true},
		{[]string{"partition", "corrupt"}, "", false},
		{[]string{"partition", "fault"}, "", false},
		{[]string{"corrupt", "fault"}, "", false},
		{[]string{"meteor"}, "", false},
	}
	for _, c := range cases {
		got, err := deploymentFor(c.drills)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("deploymentFor(%v) = %q, %v; want %q", c.drills, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("deploymentFor(%v) must fail", c.drills)
		}
	}
}

// TestGateDrillRegressions pins the drill-duration gate: ≥3 prior
// samples of the same drill (same deployment, same population) set a
// median baseline, and a current duration over 2x it is a regression.
// Mismatched deployments/populations, failed prior drills, and thin
// history contribute nothing.
func TestGateDrillRegressions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	hist := func(dep string, users uint64, name string, durs ...float64) {
		for _, d := range durs {
			run := benchRun{Deployment: dep, Users: users,
				Drills: []drillRecord{{Name: name, DurSec: d, OK: true}}}
			if err := appendBenchRun(path, run); err != nil {
				t.Fatal(err)
			}
		}
	}
	hist("plain", 200, "crash", 0.10, 0.12, 0.11)
	hist("plain", 200, "diskfull", 0.30, 0.30, 0.34)
	// Noise that must not count: other deployment, other population,
	// and a failed drill with an absurd duration.
	hist("replicated", 200, "crash", 9, 9, 9)
	hist("plain", 5000, "crash", 9, 9, 9)
	if err := appendBenchRun(path, benchRun{Deployment: "plain", Users: 200,
		Drills: []drillRecord{{Name: "crash", DurSec: 50, OK: false}}}); err != nil {
		t.Fatal(err)
	}

	cur := benchRun{Deployment: "plain", Users: 200, Drills: []drillRecord{
		{Name: "crash", DurSec: 0.20, OK: true},    // under 2x the 0.11 median
		{Name: "diskfull", DurSec: 0.70, OK: true}, // over 2x the 0.30 median
		{Name: "partition", DurSec: 9, OK: true},   // no history at all
	}}
	regs := gateDrillRegressions(path, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "diskfull") {
		t.Fatalf("regressions = %v, want exactly the diskfull one", regs)
	}

	// Two samples are not a baseline.
	thin := filepath.Join(t.TempDir(), "thin.json")
	hist2 := benchRun{Deployment: "plain", Users: 200,
		Drills: []drillRecord{{Name: "crash", DurSec: 0.1, OK: true}}}
	path2 := thin
	for i := 0; i < 2; i++ {
		if err := appendBenchRun(path2, hist2); err != nil {
			t.Fatal(err)
		}
	}
	if regs := gateDrillRegressions(path2, cur); len(regs) != 0 {
		t.Fatalf("thin history gated: %v", regs)
	}

	// No file at all gates nothing.
	if regs := gateDrillRegressions(filepath.Join(t.TempDir(), "none.json"), cur); regs != nil {
		t.Fatalf("missing history gated: %v", regs)
	}
}
