package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mailboat"
	"repro/internal/mailboatd"
	"repro/internal/obs"
)

// partitionResult is the machine-readable outcome of the partition
// drill, recorded under "partition" in BENCH_mailboat.json (the field
// whose addition bumped the schema to mailboat-bench/v2).
type partitionResult struct {
	Workers    int     `json:"workers"`
	Acked      int     `json:"acked"`
	Rejected   int     `json:"rejected_transient"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	Throughput float64 `json:"req_per_sec"`
	ResyncSec  float64 `json:"resync_seconds"`
	ZeroLoss   bool    `json:"zero_acked_loss"`
	Identical  bool    `json:"stores_identical"`
}

// partitionDrill boots a primary/backup replicated pair over loopback
// TCP, runs a concurrent delivery workload on the primary, cuts the
// replication link mid-load (deliveries fail transiently — clients
// are told, never lied to), heals it, waits for the pair to report
// in-sync, and audits the robustness contract: every acknowledged
// delivery readable on the primary, and the two stores' user
// directories byte-identical.
func partitionDrill(base string, users uint64, requests int, seed int64) (partitionResult, error) {
	var res partitionResult
	proot, err := os.MkdirTemp(base, "mailbench-repl-p-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(proot)
	broot, err := os.MkdirTemp(base, "mailbench-repl-b-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(broot)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	baddr := lis.Addr().String()
	lis.Close()

	backup, err := mailboatd.NewWithOptions(broot, mailboatd.Options{
		Users:         users,
		Seed:          seed + 1,
		SyncOnDeliver: true,
		SyncDirs:      true,
		Replica:       &mailboatd.ReplicaOptions{ListenAddr: baddr},
	})
	if err != nil {
		return res, err
	}
	defer backup.Close()
	primary, err := mailboatd.NewWithOptions(proot, mailboatd.Options{
		Users:         users,
		Seed:          seed,
		SyncOnDeliver: true,
		SyncDirs:      true,
		Metrics:       obs.NewRegistry(),
		Replica: &mailboatd.ReplicaOptions{
			Primary:      true,
			PeerAddr:     baddr,
			CallTimeout:  2 * time.Second,
			PingEvery:    25 * time.Millisecond,
			RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		return res, err
	}
	defer primary.Close()

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	perWorker := requests / workers
	if perWorker < 1 {
		perWorker = 1
	}
	var mu sync.Mutex
	acked := map[string]bool{}
	var rejected atomic.Int64
	var next atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := next.Add(1)
				body := fmt.Sprintf("repl-%d", n)
				if err := primary.Deliver(n%users, []byte(body)); err == nil {
					mu.Lock()
					acked[body] = true
					mu.Unlock()
				} else {
					rejected.Add(1)
				}
			}
		}()
	}

	// Mid-load: cut the replication link, hold it open, heal it. While
	// cut, replication legs are dropped before the wire and deliveries
	// answer transiently — acked mail never depends on a frame that
	// might not have arrived.
	time.Sleep(time.Millisecond)
	primary.ReplTransport().Partition(true)
	time.Sleep(50 * time.Millisecond)
	primary.ReplTransport().Partition(false)
	wg.Wait()
	elapsed := time.Since(start)

	// Wait for in-sync: probes ride the normal replicated path, and the
	// first one after the heal trips any pending catch-up resync.
	resyncStart := time.Now()
	deadline := resyncStart.Add(30 * time.Second)
	for {
		body := fmt.Sprintf("repl-probe-%d", time.Now().UnixNano())
		if err := primary.Deliver(0, []byte(body)); err == nil {
			mu.Lock()
			acked[body] = true
			mu.Unlock()
		}
		pst, bst := primary.ReplNode().Status(), backup.ReplNode().Status()
		h := primary.ReplHealth()
		if pst.Epoch == bst.Epoch && !pst.Resyncing && !bst.Resyncing && h.PeerReachable && !h.Degraded {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("pair never resynced: primary %+v backup %+v", pst, bst)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resyncDur := time.Since(resyncStart)

	// Audit 1: zero acked loss on the primary.
	present := map[string]bool{}
	for u := uint64(0); u < users; u++ {
		msgs, err := primary.Pickup(u)
		if err != nil {
			return res, err
		}
		for _, m := range msgs {
			present[m.Contents] = true
		}
		primary.Unlock(u)
	}
	lost := 0
	for body := range acked {
		if !present[body] {
			lost++
		}
	}

	// Audit 2: byte-identical user directories once both nodes quiesce.
	primary.Close()
	backup.Close()
	identical := true
	for u := uint64(0); u < users && identical; u++ {
		same, err := dirsEqual(filepath.Join(proot, mailboat.UserDir(u)), filepath.Join(broot, mailboat.UserDir(u)))
		if err != nil {
			return res, err
		}
		identical = same
	}

	res = partitionResult{
		Workers:    workers,
		Acked:      len(acked),
		Rejected:   int(rejected.Load()),
		ElapsedSec: elapsed.Seconds(),
		Throughput: float64(workers*perWorker) / elapsed.Seconds(),
		ResyncSec:  resyncDur.Seconds(),
		ZeroLoss:   lost == 0,
		Identical:  identical,
	}
	fmt.Printf("partition drill: %d workers, %d acked, %d transient rejections in %v (%.0f req/s)\n",
		workers, res.Acked, res.Rejected, elapsed.Round(time.Millisecond), res.Throughput)
	fmt.Printf("partition drill: link cut 50ms mid-load; pair in sync %v after heal\n",
		resyncDur.Round(time.Millisecond))
	if lost > 0 {
		return res, fmt.Errorf("%d acknowledged deliveries lost", lost)
	}
	if !identical {
		return res, fmt.Errorf("stores diverged after resync")
	}
	fmt.Println("partition drill: zero acked-mail loss, stores byte-identical after resync")
	return res, nil
}

// dirsEqual compares two directories file for file.
func dirsEqual(a, b string) (bool, error) {
	ea, err := os.ReadDir(a)
	if err != nil {
		return false, err
	}
	eb, err := os.ReadDir(b)
	if err != nil {
		return false, err
	}
	if len(ea) != len(eb) {
		return false, nil
	}
	for _, e := range ea {
		ca, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			return false, err
		}
		cb, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				return false, nil
			}
			return false, err
		}
		if string(ca) != string(cb) {
			return false, nil
		}
	}
	return true, nil
}
