// mailbench reproduces Figure 11: throughput of Mailboat, GoMail, and
// (simulated) CMAIL under the §9.3 mixed workload — equal parts
// SMTP-style delivery and POP3-style pickup+delete, 100 users, one
// closed-loop client per core, fixed total requests — on a RAM-backed
// store, sweeping the number of cores.
//
// Usage:
//
//	mailbench [-cores 1,2,4,8] [-requests N] [-users N] [-servers a,b,c]
//	          [-dir path] [-json path]
//
// -json additionally writes the sweep as machine-readable JSON (one
// object with run parameters and a per-point array carrying
// requests/sec plus deliver/pickup latency count, mean, p50/p90/p99 in
// seconds, measured with the internal/obs histograms).
//
// Servers: mailboat (verified library, direct calls — the paper's
// measurement method), gomail, cmail (simulated), and mailboat-net (the
// same library behind real SMTP/POP3 over loopback TCP, quantifying the
// protocol overhead §9.3 excluded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/postal"
)

func main() {
	coresFlag := flag.String("cores", defaultCores(), "comma-separated core counts to sweep")
	requests := flag.Int("requests", 20000, "total requests per measurement")
	users := flag.Uint64("users", 100, "number of user mailboxes")
	servers := flag.String("servers", "mailboat,gomail,cmail", "comma-separated servers to measure")
	dir := flag.String("dir", "", "scratch directory (default: RAM-backed)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	flag.Parse()

	var cores []int
	for _, s := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "mailbench: bad core count %q\n", s)
			os.Exit(2)
		}
		cores = append(cores, n)
	}

	points, err := postal.Sweep(postal.SweepOptions{
		Servers:          strings.Split(*servers, ","),
		Cores:            cores,
		Users:            *users,
		RequestsPerPoint: *requests,
		BaseDir:          *dir,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mailbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(postal.FormatSweep(points))
	fmt.Printf("\nstore: %s; workload: %d requests/point, %d users, 50/50 deliver:pickup\n",
		storeDesc(*dir), *requests, *users)

	if *jsonPath != "" {
		out := struct {
			RequestsPerPoint int                 `json:"requests_per_point"`
			Users            uint64              `json:"users"`
			Seed             int64               `json:"seed"`
			Store            string              `json:"store"`
			Points           []postal.SweepPoint `json:"points"`
		}{*requests, *users, *seed, storeDesc(*dir), points}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("json results written to %s\n", *jsonPath)
	}
}

func defaultCores() string {
	max := runtime.NumCPU()
	var cs []string
	for c := 1; c <= max && c <= 12; c *= 2 {
		cs = append(cs, strconv.Itoa(c))
	}
	return strings.Join(cs, ",")
}

func storeDesc(dir string) string {
	if dir == "" {
		return postal.RAMDir() + " (RAM-backed)"
	}
	return dir
}
