// mailbench reproduces Figure 11: throughput of Mailboat, GoMail, and
// (simulated) CMAIL under the §9.3 mixed workload — equal parts
// SMTP-style delivery and POP3-style pickup+delete, 100 users, one
// closed-loop client per core, fixed total requests — on a RAM-backed
// store, sweeping the number of cores.
//
// Usage:
//
//	mailbench [-cores 1,2,4,8] [-requests N] [-users N] [-servers a,b,c]
//	          [-dir path] [-seed N] [-json path] [-corrupt] [-partition]
//	          [-no-fsync] [-trace] [-rate N] [-profile-duration d]
//	          [-bench path] [-slo] [-load] [-duration d] [-skew uniform|zipf]
//	          [-zipf-s S] [-mix F] [-drill crash,fault,corrupt,partition,diskfull]
//
// By default the mailboat backends run with the full checked sync
// discipline (fsync spool data, fsync the mailbox directory before
// acking). -no-fsync disables both barriers — the drill knob for the
// daemon's fast mode, whose checked contract weakens to prefix
// durability (acked mail may be rolled back by an OS crash, but the
// surviving mailbox is always a no-holes prefix of the delivery
// order). Compare the two to price durability.
//
// -json additionally writes the sweep as machine-readable JSON (one
// object with run parameters and a per-point array carrying
// requests/sec plus deliver/pickup latency count, mean, p50/p90/p99 in
// seconds, measured with the internal/obs histograms).
//
// -trace runs the open-loop trace profile instead of the sweep:
// requests are issued on a fixed schedule at -rate req/s (latencies
// measured from the scheduled start, so queueing counts — no
// coordinated omission), every request carries a trace root span, and
// the per-stage breakdown (spool write vs. publish link vs. directory
// sync) is reported from the span durations, then checked against the
// declared latency SLO gates. Both -trace and -json runs append a
// dated entry (with the build's git revision) to the -bench file,
// BENCH_mailboat.json by default, so a working tree accretes a
// performance history; -slo makes a failing gate exit nonzero.
//
// -partition runs the replication drill instead of the sweep: a
// primary/backup pair over loopback TCP takes a concurrent delivery
// workload while the replication link is cut and healed mid-load. The
// run fails unless every acknowledged delivery is still readable, the
// pair reports in-sync after the heal (catch-up resync), and the two
// stores end byte-identical; the result is appended to -bench under
// the schema-v2 "partition" field.
//
// -corrupt runs the integrity drill instead of the sweep: a
// checksummed, mirrored store takes a concurrent deliver/pickup
// workload, one replica's live bytes are silently flipped mid-run, a
// heal-scrub repairs them under load, and the run fails unless every
// acknowledged delivery is still readable afterwards and the rot was
// detected rather than served.
//
// -load (implied by -drill) runs the sustained load harness instead
// of the sweep: an open-loop multi-tenant workload — -users mailboxes
// under -skew uniform|zipf (exponent -zipf-s) with a -mix fraction of
// deliveries — at -rate req/s for -duration, while the -drill list
// (crash, fault, corrupt, partition, diskfull; comma-separated,
// evenly spaced through the run) executes against the live store.
// The diskfull drill forces the store's no-space signal mid-load
// (fill), asserts every delivery is refused with the 452-class
// insufficient-storage marker rather than hung or lost (shed), then
// releases the signal (free) and measures time back to the first
// committed delivery (recover). Latency is bucketed into steady vs
// drill phases by scheduled start; the gated steady phases decide
// the SLO verdict, and a post-run audit enforces zero acked-mail
// loss, no resurrected deletes, hash-clean reads, and (replicated)
// byte-identical stores. Every run appends a schema-v3 record to
// -bench, and each drill's duration is gated against the run history
// in that file (a drill 2x slower than the median of prior runs on
// the same deployment and population fails the run under -slo).
// Audit and drill failures print the seed and the verbatim replay
// command. See docs/DURABILITY.md for the claims each drill
// substantiates.
//
// Servers: mailboat (verified library, direct calls — the paper's
// measurement method), gomail, cmail (simulated), and mailboat-net (the
// same library behind real SMTP/POP3 over loopback TCP, quantifying the
// protocol overhead §9.3 excluded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mailboatd"
	"repro/internal/obs"
	"repro/internal/postal"
)

func main() {
	coresFlag := flag.String("cores", defaultCores(), "comma-separated core counts to sweep")
	requests := flag.Int("requests", 20000, "total requests per measurement")
	users := flag.Uint64("users", 100, "number of user mailboxes")
	servers := flag.String("servers", "mailboat,gomail,cmail", "comma-separated servers to measure")
	dir := flag.String("dir", "", "scratch directory (default: RAM-backed)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	corrupt := flag.Bool("corrupt", false, "run the silent-corruption heal drill instead of the throughput sweep")
	partition := flag.Bool("partition", false, "run the replication partition drill instead of the throughput sweep (two-node pair, link cut and healed mid-load)")
	noFsync := flag.Bool("no-fsync", false, "run the mailboat backends without durability barriers (acked mail may be lost on an OS crash; contract weakens to prefix durability)")
	traceMode := flag.Bool("trace", false, "run only the traced open-loop profile (per-stage latency breakdown + SLO gates) and append it to -bench")
	rate := flag.Float64("rate", 1000, "offered load for the open-loop trace profile, requests/second")
	profileDur := flag.Duration("profile-duration", 2*time.Second, "duration of the open-loop trace profile")
	benchPath := flag.String("bench", "BENCH_mailboat.json", "append-style dated results file, written by -trace, -json, and -load runs")
	sloStrict := flag.Bool("slo", false, "exit nonzero when an SLO gate fails")
	loadMode := flag.Bool("load", false, "run the sustained open-loop load harness instead of the sweep (implied by -drill)")
	duration := flag.Duration("duration", 0, "duration of the -load run (0 = auto: 8s, scaled up for large -users so drill windows contain O(users) recovery)")
	skew := flag.String("skew", postal.SkewUniform, "mailbox popularity skew for -load and -trace: uniform or zipf")
	zipfS := flag.Float64("zipf-s", postal.DefaultZipfS, "zipf exponent (> 1) when -skew zipf")
	mix := flag.Float64("mix", 0.5, "fraction of requests that are deliveries, in [0,1]")
	drillFlag := flag.String("drill", "", "comma-separated mid-load drills for -load: crash, fault, corrupt, partition, diskfull")
	flag.Parse()

	if *loadMode || *drillFlag != "" {
		cfg := loadConfig{
			base:     *dir,
			users:    *users,
			rate:     *rate,
			duration: *duration,
			seed:     *seed,
			noFsync:  *noFsync,
			skew:     *skew,
			zipfS:    *zipfS,
			mix:      *mix,
			drills:   parseDrills(*drillFlag),
		}
		if cfg.duration == 0 {
			cfg.duration = autoDuration(cfg.users)
		}
		out, err := runLoad(cfg)
		if out != nil {
			printLoad(os.Stdout, cfg, out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: load harness: %v\n", err)
			os.Exit(1)
		}
		run := benchRun{
			Date:       time.Now().UTC().Format(time.RFC3339),
			Revision:   gitRevision(),
			Go:         runtime.Version(),
			Store:      storeDesc(*dir),
			Durability: durabilityDesc(*noFsync),
			Users:      *users,
			Skew:       *skew,
			Mix:        *mix,
			Deployment: out.Deployment,
			OpenLoop:   &out.Res,
			SLO:        out.Gates,
			PhaseSLO:   out.PhaseGates,
			SLOPass:    &out.SLOPass,
			Drills:     out.Drills,
			Audit:      &out.Audit,
		}
		// Gate drill durations against the history BEFORE appending this
		// run, so a run never dilutes the baseline it is judged by.
		regressions := gateDrillRegressions(*benchPath, run)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "mailbench: drill regression: %s\n  seed %d; replay: %s\n",
				r, cfg.seed, replayCommand(cfg))
		}
		if err := appendBenchRun(*benchPath, run); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: writing %s: %v\n", *benchPath, err)
			os.Exit(1)
		}
		fmt.Printf("bench history appended to %s\n", *benchPath)
		if (!out.SLOPass || len(regressions) > 0) && *sloStrict {
			os.Exit(1)
		}
		return
	}

	if *corrupt {
		if err := corruptDrill(*dir, *users, *requests, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: corrupt drill: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *partition {
		pr, err := partitionDrill(*dir, *users, *requests, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: partition drill: %v\n", err)
			os.Exit(1)
		}
		run := benchRun{
			Date:       time.Now().UTC().Format(time.RFC3339),
			Revision:   gitRevision(),
			Go:         runtime.Version(),
			Store:      storeDesc(*dir),
			Durability: durabilityDesc(false), // the drill always runs the full sync discipline
			Users:      *users,
			Partition:  &pr,
		}
		if err := appendBenchRun(*benchPath, run); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: writing %s: %v\n", *benchPath, err)
			os.Exit(1)
		}
		fmt.Printf("bench history appended to %s\n", *benchPath)
		return
	}

	// profile runs the traced open-loop stage profile and records it in
	// the dated bench file; -trace runs only this, -json runs it after
	// the sweep (so every machine-readable run carries per-stage
	// quantiles and an SLO verdict).
	profile := func(sweep []postal.SweepPoint) bool {
		w := postal.Workload{Users: *users, Skew: *skew, ZipfS: *zipfS, Mix: *mix}
		res, gates, pass, err := runTraceProfile(*dir, w, *rate, *profileDur, *seed, *noFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: trace profile: %v\n", err)
			os.Exit(1)
		}
		printProfile(os.Stdout, res, gates, pass)
		run := benchRun{
			Date:       time.Now().UTC().Format(time.RFC3339),
			Revision:   gitRevision(),
			Go:         runtime.Version(),
			Store:      storeDesc(*dir),
			Durability: durabilityDesc(*noFsync),
			Users:      *users,
			Skew:       *skew,
			Mix:        *mix,
			Sweep:      sweep,
			OpenLoop:   &res,
			SLO:        gates,
			SLOPass:    &pass,
		}
		if err := appendBenchRun(*benchPath, run); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: writing %s: %v\n", *benchPath, err)
			os.Exit(1)
		}
		fmt.Printf("bench history appended to %s\n", *benchPath)
		return pass
	}

	if *traceMode {
		if pass := profile(nil); !pass && *sloStrict {
			os.Exit(1)
		}
		return
	}

	var cores []int
	for _, s := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "mailbench: bad core count %q\n", s)
			os.Exit(2)
		}
		cores = append(cores, n)
	}

	points, err := postal.Sweep(postal.SweepOptions{
		Servers:          strings.Split(*servers, ","),
		Cores:            cores,
		Users:            *users,
		RequestsPerPoint: *requests,
		BaseDir:          *dir,
		Seed:             *seed,
		NoFsync:          *noFsync,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mailbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(postal.FormatSweep(points))
	fmt.Printf("\nstore: %s; workload: %d requests/point, %d users, 50/50 deliver:pickup; mailboat durability: %s\n",
		storeDesc(*dir), *requests, *users, durabilityDesc(*noFsync))
	if *noFsync {
		fmt.Println("WARNING: -no-fsync — acked mail may be lost on an OS crash (prefix-durability contract only)")
	}

	if *jsonPath != "" {
		out := struct {
			RequestsPerPoint int                 `json:"requests_per_point"`
			Users            uint64              `json:"users"`
			Seed             int64               `json:"seed"`
			Store            string              `json:"store"`
			Durability       string              `json:"durability"`
			Points           []postal.SweepPoint `json:"points"`
		}{*requests, *users, *seed, storeDesc(*dir), durabilityDesc(*noFsync), points}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mailbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("json results written to %s\n", *jsonPath)
		if pass := profile(points); !pass && *sloStrict {
			os.Exit(1)
		}
	}
}

// corruptDrill boots a checksummed mirror under scratch roots, runs a
// concurrent deliver/pickup workload, flips a byte of replica 0 halfway
// through, heal-scrubs under load, and audits: every acknowledged
// delivery readable after a reboot, nothing served that was never sent,
// detection counter moved, final scrub clean.
func corruptDrill(base string, users uint64, requests int, seed int64) error {
	root0, err := os.MkdirTemp(base, "mailbench-corrupt-r0-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root0)
	root1, err := os.MkdirTemp(base, "mailbench-corrupt-r1-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root1)

	a, err := mailboatd.NewWithOptions(root0, mailboatd.Options{
		Users:      users,
		Seed:       seed,
		MirrorRoot: root1,
		Checksum:   true,
		Metrics:    obs.NewRegistry(),
	})
	if err != nil {
		return err
	}

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	perWorker := requests / workers
	if perWorker < 1 {
		perWorker = 1
	}
	var mu sync.Mutex
	acked := map[string]bool{}
	var next atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := next.Add(1)
				user := n % users
				body := fmt.Sprintf("drill-%d", n)
				if err := a.Deliver(user, []byte(body)); err == nil {
					mu.Lock()
					acked[body] = true
					mu.Unlock()
				}
				if n%8 == 0 {
					a.Pickup(user)
					a.Unlock(user)
				}
			}
		}(w)
	}

	// Halfway into the load, rot a published file on replica 0 and heal
	// it back while deliveries keep committing.
	time.Sleep(time.Millisecond)
	corrupted := a.CorruptReplica(0)
	rep, _ := a.Scrub(true)
	wg.Wait()
	elapsed := time.Since(start)

	if corrupted == "" {
		a.Close()
		return fmt.Errorf("found nothing to corrupt; drill exercised nothing")
	}
	final, _ := a.Scrub(true)
	detected := a.IntegrityDetected()
	a.Close()

	// Audit on a fresh boot: recovery resilvers and scrubs, and every
	// acknowledged delivery must still be readable.
	b, err := mailboatd.NewWithOptions(root0, mailboatd.Options{
		Users:      users,
		Seed:       seed + 1,
		MirrorRoot: root1,
		Checksum:   true,
	})
	if err != nil {
		return err
	}
	defer b.Close()
	present := map[string]bool{}
	for u := uint64(0); u < users; u++ {
		msgs, err := b.Pickup(u)
		if err != nil {
			return err
		}
		for _, m := range msgs {
			present[m.Contents] = true
			if !strings.HasPrefix(m.Contents, "drill-") {
				return fmt.Errorf("mailbox serves bytes nobody sent: %q", m.Contents)
			}
		}
		b.Unlock(u)
	}
	lost := 0
	for body := range acked {
		if !present[body] {
			lost++
		}
	}

	fmt.Printf("corrupt drill: %d workers, %d acked deliveries in %v (%.0f req/s)\n",
		workers, len(acked), elapsed.Round(time.Millisecond),
		float64(workers*perWorker)/elapsed.Seconds())
	fmt.Printf("corrupt drill: flipped %s on replica 0; mid-load scrub %s; final scrub %s; detected=%d\n",
		corrupted, rep, final, detected)
	if detected == 0 {
		return fmt.Errorf("corruption never detected")
	}
	if !final.Clean() {
		return fmt.Errorf("final scrub left damage: %s", final)
	}
	if lost > 0 {
		return fmt.Errorf("%d acknowledged deliveries lost", lost)
	}
	fmt.Println("corrupt drill: zero acked-mail loss, rot detected and healed")
	return nil
}

func defaultCores() string {
	max := runtime.NumCPU()
	var cs []string
	for c := 1; c <= max && c <= 12; c *= 2 {
		cs = append(cs, strconv.Itoa(c))
	}
	return strings.Join(cs, ",")
}

func durabilityDesc(noFsync bool) string {
	if noFsync {
		return "no-fsync (prefix durability only)"
	}
	return "fsync+dirsync (full sync discipline)"
}

func storeDesc(dir string) string {
	if dir == "" {
		return postal.RAMDir() + " (RAM-backed)"
	}
	return dir
}
