package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/postal"
	"repro/internal/trace"
)

// benchSchema versions BENCH_mailboat.json so tooling can detect shape
// changes instead of guessing.
//
// Schema evolution (every bump is additive — a vN reader that ignores
// unknown fields parses every vN+1 run, and this writer preserves
// fields it does not know, so histories survive both directions):
//
//	v1  date/revision/go/store/durability/users + "sweep" (Figure 11
//	    points), "openloop" (trace profile), "slo"/"slo_pass".
//	v2  added the optional "partition" field: the replication
//	    partition drill's results (acked/lost counts, resync seconds,
//	    stores-identical verdict).
//	v3  the load harness: "skew"/"mix" name the multi-tenant workload
//	    model, "deployment" the store stack it ran against,
//	    "drills" the executed mid-load drill schedule, "audit" the
//	    post-run durability audit, "phase_slo" the per-steady-phase
//	    gate verdicts; "openloop" grows a "phases" array with
//	    per-window latency slices. All new fields are omitempty, so
//	    sweep/trace/partition runs look exactly like v2 wrote them.
const benchSchema = "mailboat-bench/v3"

// benchRun is one dated entry in BENCH_mailboat.json. A sweep run
// carries Sweep; a trace-profile run carries OpenLoop + SLO; a -json
// run carries both; a -partition run carries Partition; a -load run
// carries OpenLoop (with phases) + Drills + Audit + PhaseSLO.
type benchRun struct {
	Date       string                   `json:"date"`
	Revision   string                   `json:"revision"`
	Go         string                   `json:"go"`
	Store      string                   `json:"store"`
	Durability string                   `json:"durability"`
	Users      uint64                   `json:"users"`
	Skew       string                   `json:"skew,omitempty"`
	Mix        float64                  `json:"mix,omitempty"`
	Deployment string                   `json:"deployment,omitempty"`
	Sweep      []postal.SweepPoint      `json:"sweep,omitempty"`
	OpenLoop   *postal.OpenLoopResult   `json:"openloop,omitempty"`
	SLO        []postal.GateResult      `json:"slo,omitempty"`
	PhaseSLO   []postal.PhaseGateResult `json:"phase_slo,omitempty"`
	SLOPass    *bool                    `json:"slo_pass,omitempty"`
	Partition  *partitionResult         `json:"partition,omitempty"`
	Drills     []drillRecord            `json:"drills,omitempty"`
	Audit      *loadAudit               `json:"audit,omitempty"`
}

// gitRevision reads the binary's VCS stamp; binaries built outside a
// checkout (notably `go test` binaries) report "unknown".
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// appendBenchRun loads path (tolerating a missing file), appends run,
// and writes the file back. A corrupt existing file is an error, not
// silently clobbered history.
//
// The reader is forward-compatible on purpose: existing run entries
// are kept as raw JSON and re-emitted verbatim, and unknown top-level
// keys are preserved (after "schema" and "runs", in sorted order) —
// an older binary appending to a file written by a newer schema must
// not strip the fields it does not understand. The round-trip is
// pinned by TestAppendBenchRunPreservesUnknownFields.
func appendBenchRun(path string, run benchRun) error {
	top := map[string]json.RawMessage{}
	var runs []json.RawMessage
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(b, &top); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (move it aside): %w", path, err)
		}
		if raw, ok := top["runs"]; ok {
			if err := json.Unmarshal(raw, &runs); err != nil {
				return fmt.Errorf("existing %s has a malformed runs array (move it aside): %w", path, err)
			}
		}
	case os.IsNotExist(err):
		// fresh file
	default:
		return err
	}

	newRun, err := json.Marshal(run)
	if err != nil {
		return err
	}
	runs = append(runs, newRun)

	var extra []string
	for k := range top {
		if k != "schema" && k != "runs" {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)

	// Assemble by hand to control key order (schema, runs, then the
	// preserved unknowns) — a map would shuffle it.
	var buf bytes.Buffer
	buf.WriteString(`{"schema":`)
	sv, _ := json.Marshal(benchSchema)
	buf.Write(sv)
	buf.WriteString(`,"runs":[`)
	for i, r := range runs {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(r)
	}
	buf.WriteByte(']')
	for _, k := range extra {
		buf.WriteByte(',')
		kv, _ := json.Marshal(k)
		buf.Write(kv)
		buf.WriteByte(':')
		buf.Write(top[k])
	}
	buf.WriteByte('}')

	var out bytes.Buffer
	if err := json.Indent(&out, buf.Bytes(), "", "  "); err != nil {
		return err
	}
	out.WriteByte('\n')
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// gateDrillRegressions gates each drill's wall-clock duration against
// the history already accreted at path: prior successful executions of
// the same drill on the same deployment with the same population are
// the baseline, and — once at least three samples exist, so one noisy
// run cannot set the bar — a duration over twice their median is a
// regression. Recovery time is a durability property with a perf
// budget: a crash recovery or disk-full resume that quietly doubles is
// a bug the zero-loss audit alone would never catch. Called before the
// current run is appended, so a run never gates against itself; no
// history (or too little) gates nothing.
func gateDrillRegressions(path string, run benchRun) []string {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var top struct {
		Runs []benchRun `json:"runs"`
	}
	if err := json.Unmarshal(b, &top); err != nil {
		return nil
	}
	hist := map[string][]float64{}
	for _, r := range top.Runs {
		if r.Deployment != run.Deployment || r.Users != run.Users {
			continue
		}
		for _, d := range r.Drills {
			if d.OK {
				hist[d.Name] = append(hist[d.Name], d.DurSec)
			}
		}
	}
	var regressions []string
	for _, d := range run.Drills {
		samples := hist[d.Name]
		if len(samples) < 3 {
			continue
		}
		med := median(samples)
		if d.DurSec > 2*med {
			regressions = append(regressions,
				fmt.Sprintf("drill %s took %.3fs, over 2x the %.3fs median of %d prior runs (%s deployment, %d users)",
					d.Name, d.DurSec, med, len(samples), run.Deployment, run.Users))
		}
	}
	return regressions
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// runTraceProfile runs the traced open-loop profile against the
// verified library: a fixed offered rate, per-request root spans, and
// the per-stage latency breakdown from the span durations. It returns
// the run, the evaluated SLO gates, and their overall verdict.
func runTraceProfile(base string, w postal.Workload, rate float64, dur time.Duration, seed int64, noFsync bool) (postal.OpenLoopResult, []postal.GateResult, bool, error) {
	if base == "" {
		base = postal.RAMDir()
	}
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	mk := postal.NewBackend
	if noFsync {
		mk = postal.NewFastBackend
	}
	b, cleanup, err := mk("mailboat", base, w.Users, workers, seed)
	if err != nil {
		return postal.OpenLoopResult{}, nil, false, err
	}
	defer cleanup()

	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)
	res := postal.OpenLoop(b, postal.OpenLoopOptions{
		Workers:  workers,
		Users:    w.Users,
		Skew:     w.Skew,
		ZipfS:    w.ZipfS,
		Mix:      w.Mix,
		Rate:     rate,
		Duration: dur,
		Seed:     seed,
		Tracer:   tracer,
	})
	gates, pass := postal.EvaluateGates(postal.DefaultGates(), res)
	return res, gates, pass, nil
}

// printProfile renders the open-loop profile for humans: offered vs
// achieved load, per-op quantiles, the per-stage breakdown, and the
// SLO verdicts.
func printProfile(w io.Writer, res postal.OpenLoopResult, gates []postal.GateResult, pass bool) {
	fmt.Fprintf(w, "open-loop trace profile: offered %.0f req/s, achieved %.0f req/s (%d reqs, %d errors, %v)\n",
		res.OfferedRate, res.Throughput, res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  deliver: count %d  p50 %s  p90 %s  p99 %s\n",
		res.Deliver.Count, fmtSeconds(res.Deliver.P50), fmtSeconds(res.Deliver.P90), fmtSeconds(res.Deliver.P99))
	fmt.Fprintf(w, "  pickup:  count %d  p50 %s  p90 %s  p99 %s\n",
		res.Pickup.Count, fmtSeconds(res.Pickup.P50), fmtSeconds(res.Pickup.P90), fmtSeconds(res.Pickup.P99))
	if len(res.Stages) > 0 {
		fmt.Fprintf(w, "  per-stage latency (from span durations):\n")
		fmt.Fprintf(w, "    %-10s %-16s %8s %10s %10s %10s\n", "op", "stage", "count", "p50", "p90", "p99")
		for _, s := range res.Stages {
			fmt.Fprintf(w, "    %-10s %-16s %8d %10s %10s %10s\n",
				s.Op, s.Stage, s.Count, fmtSeconds(s.P50), fmtSeconds(s.P90), fmtSeconds(s.P99))
		}
	}
	for _, g := range gates {
		fmt.Fprintf(w, "  SLO %s\n", g)
	}
	if pass {
		fmt.Fprintln(w, "  SLO verdict: PASS")
	} else {
		fmt.Fprintln(w, "  SLO verdict: FAIL")
	}
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
