package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/postal"
	"repro/internal/trace"
)

// benchSchema versions BENCH_mailboat.json so tooling can detect shape
// changes instead of guessing. v2 added the optional "partition" field
// (the replication partition drill's results); v1 readers that ignore
// unknown fields still parse every run.
const benchSchema = "mailboat-bench/v2"

// benchRun is one dated entry in BENCH_mailboat.json. A sweep run
// carries Sweep; a trace-profile run carries OpenLoop + SLO; a -json
// run carries both; a -partition run carries Partition.
type benchRun struct {
	Date       string                 `json:"date"`
	Revision   string                 `json:"revision"`
	Go         string                 `json:"go"`
	Store      string                 `json:"store"`
	Durability string                 `json:"durability"`
	Users      uint64                 `json:"users"`
	Sweep      []postal.SweepPoint    `json:"sweep,omitempty"`
	OpenLoop   *postal.OpenLoopResult `json:"openloop,omitempty"`
	SLO        []postal.GateResult    `json:"slo,omitempty"`
	SLOPass    *bool                  `json:"slo_pass,omitempty"`
	Partition  *partitionResult       `json:"partition,omitempty"`
}

// benchFile is the whole append-style file: one JSON object whose runs
// array grows by one per invocation, so a working directory accretes a
// dated performance history.
type benchFile struct {
	Schema string     `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// gitRevision reads the binary's VCS stamp; binaries built outside a
// checkout (notably `go test` binaries) report "unknown".
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// appendBenchRun loads path (tolerating a missing file), appends run,
// and writes the file back. A corrupt existing file is an error, not
// silently clobbered history.
func appendBenchRun(path string, run benchRun) error {
	var f benchFile
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(b, &f); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (move it aside): %w", path, err)
		}
	case os.IsNotExist(err):
		// fresh file
	default:
		return err
	}
	f.Schema = benchSchema
	f.Runs = append(f.Runs, run)
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runTraceProfile runs the traced open-loop profile against the
// verified library: a fixed offered rate, per-request root spans, and
// the per-stage latency breakdown from the span durations. It returns
// the run, the evaluated SLO gates, and their overall verdict.
func runTraceProfile(base string, users uint64, rate float64, dur time.Duration, seed int64, noFsync bool) (postal.OpenLoopResult, []postal.GateResult, bool, error) {
	if base == "" {
		base = postal.RAMDir()
	}
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	mk := postal.NewBackend
	if noFsync {
		mk = postal.NewFastBackend
	}
	b, cleanup, err := mk("mailboat", base, users, workers, seed)
	if err != nil {
		return postal.OpenLoopResult{}, nil, false, err
	}
	defer cleanup()

	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)
	res := postal.OpenLoop(b, postal.OpenLoopOptions{
		Workers:  workers,
		Users:    users,
		Rate:     rate,
		Duration: dur,
		Seed:     seed,
		Tracer:   tracer,
	})
	gates, pass := postal.EvaluateGates(postal.DefaultGates(), res)
	return res, gates, pass, nil
}

// printProfile renders the open-loop profile for humans: offered vs
// achieved load, per-op quantiles, the per-stage breakdown, and the
// SLO verdicts.
func printProfile(w io.Writer, res postal.OpenLoopResult, gates []postal.GateResult, pass bool) {
	fmt.Fprintf(w, "open-loop trace profile: offered %.0f req/s, achieved %.0f req/s (%d reqs, %d errors, %v)\n",
		res.OfferedRate, res.Throughput, res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  deliver: count %d  p50 %s  p90 %s  p99 %s\n",
		res.Deliver.Count, fmtSeconds(res.Deliver.P50), fmtSeconds(res.Deliver.P90), fmtSeconds(res.Deliver.P99))
	fmt.Fprintf(w, "  pickup:  count %d  p50 %s  p90 %s  p99 %s\n",
		res.Pickup.Count, fmtSeconds(res.Pickup.P50), fmtSeconds(res.Pickup.P90), fmtSeconds(res.Pickup.P99))
	if len(res.Stages) > 0 {
		fmt.Fprintf(w, "  per-stage latency (from span durations):\n")
		fmt.Fprintf(w, "    %-10s %-16s %8s %10s %10s %10s\n", "op", "stage", "count", "p50", "p90", "p99")
		for _, s := range res.Stages {
			fmt.Fprintf(w, "    %-10s %-16s %8d %10s %10s %10s\n",
				s.Op, s.Stage, s.Count, fmtSeconds(s.P50), fmtSeconds(s.P90), fmtSeconds(s.P99))
		}
	}
	for _, g := range gates {
		fmt.Fprintf(w, "  SLO %s\n", g)
	}
	if pass {
		fmt.Fprintln(w, "  SLO verdict: PASS")
	} else {
		fmt.Fprintln(w, "  SLO verdict: FAIL")
	}
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
